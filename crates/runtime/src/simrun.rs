//! The simulated continuum executor.
//!
//! Executes placed workflows over virtual time with the effects the
//! analytic estimator ignores: FIFO queueing for device cores and max-min
//! fair link sharing for concurrent transfers. This is the "ground truth"
//! that every experiment reports; placement policies only ever see the
//! contention-free estimates, exactly as a real scheduler would.
//!
//! Transfer model: an item moving `src -> dst` waits the path's propagation
//! latency, then streams its bytes as a flow in the shared
//! [`FlowNetwork`]; co-located consumers receive items instantly; repeated
//! deliveries of the same item to the same node are deduplicated.
//!
//! Hot-path layout (see DESIGN.md "Stream executor hot paths"): each
//! request's `(item, destination node)` pairs are interned into dense
//! *slot* indices on first sight, per-task input lists are deduped once
//! into a CSR [`ReqPlan`], events carry slot indices instead of
//! `(DataId, NodeId)` keys, and route lookups go through an epoch-tagged
//! [`RouteCache`] invalidated on link fail/restore.

use crate::trace::{ExecutionTrace, TaskRecord};
use continuum_model::{CostMeter, DeviceId, EnergyMeter};
use continuum_net::{
    shortest_path_avoiding, FlowId, FlowNetwork, LinkId, NodeId, Path, RegionPartition, RouteCache,
    RouteSeg,
};
use continuum_obs::{Histogram, MetricsRegistry, MetricsSnapshot, Telemetry, Tracer};
use continuum_placement::{Env, Metrics, OnlinePlacer, Placement};
use continuum_sim::{EventId, EventQueue, FaultKind, FaultSchedule, SimDuration, SimTime};
use continuum_workflow::{Dag, DataId, TaskId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// One timed, placed workflow instance.
#[derive(Debug, Clone)]
pub struct StreamRequest {
    /// When the request enters the system.
    pub arrival: SimTime,
    /// The workflow.
    pub dag: Dag,
    /// One device per task of `dag`.
    pub placement: Placement,
}

/// Result of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-task and per-request timings.
    pub trace: ExecutionTrace,
    /// Aggregate metrics in the same shape the estimator reports, so
    /// estimated and simulated runs compare directly.
    pub metrics: Metrics,
    /// Telemetry snapshot of this run (route-cache hit rate, calendar
    /// compactions, flow-engine batches, re-placements, ...). `None`
    /// unless a [`continuum_obs::Telemetry`] sink was ambient.
    pub telemetry: Option<Box<MetricsSnapshot>>,
}

/// Equality deliberately ignores `telemetry`: the snapshot describes how
/// the executor ran (cache hits, compaction passes), not what it
/// computed, and the bench oracles assert outcome equality between
/// executors with different internals. The telemetry-on-vs-off proptest
/// relies on `trace` and `metrics` covering every simulated decision.
impl PartialEq for SimOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.trace == other.trace && self.metrics == other.metrics
    }
}

/// Execute a single workflow arriving at time zero.
pub fn simulate(env: &Env, dag: &Dag, placement: &Placement) -> SimOutcome {
    simulate_stream(
        env,
        &[StreamRequest {
            arrival: SimTime::ZERO,
            dag: dag.clone(),
            placement: placement.clone(),
        }],
    )
}

/// Fault-injection configuration for the simulated executor.
///
/// Each task *attempt* fails independently with `fail_prob` at the moment
/// it would complete (the work it burned — cores, energy, dollars — is
/// still charged, as on real hardware). Failed attempts are retried on the
/// same device after `retry_delay`, up to `max_attempts` total tries.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Probability that one attempt fails.
    pub fail_prob: f64,
    /// Delay before a failed task re-enters its device queue.
    pub retry_delay: continuum_sim::SimDuration,
    /// Total attempts allowed per task (>= 1).
    pub max_attempts: u32,
    /// RNG seed for the fault process.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            fail_prob: 0.0,
            retry_delay: continuum_sim::SimDuration::from_millis(100),
            max_attempts: 100,
            seed: 0xFA_17,
        }
    }
}

/// Infrastructure fault injection for the simulated executor.
///
/// Interprets the device and link events of a [`FaultSchedule`] (endpoint
/// events belong to the fabric broker and are ignored here):
///
/// - **Device crash**: running attempts are killed (their elapsed
///   execution is destroyed — energy and dollars were already charged, as
///   on real hardware), the device stops dispatching, and after a
///   `detection` sweep its queued and orphaned tasks are *re-placed* onto
///   surviving devices by an online placer — not retried in place. Tasks
///   with no feasible live device park until something recovers.
/// - **Device recover**: undetected orphans restart in place (their
///   inputs are already at the node); parked tasks get another placement
///   attempt.
/// - **Link fail**: in-flight transfers crossing the link abort with their
///   transferred bytes preserved; the remainder re-routes over the
///   surviving topology, or stalls until a restore reconnects it.
/// - **Link restore**: stalled transfers retry.
///
/// A schedule whose every crash eventually recovers always terminates; a
/// schedule that permanently kills every feasible device for some task
/// trips the executor's final conservation assert (deadlock) by design.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    /// Timed device/link crash and recover events.
    pub schedule: FaultSchedule,
    /// Detection latency: how long after a device crash its orphaned work
    /// is noticed and re-placed.
    pub detection: SimDuration,
}

impl FaultPlane {
    /// Project this device-level chaos schedule onto *region outages*: the
    /// timed transitions `(at, region, down)` where a partition region's
    /// last live device dies (`down == true`) or its first device comes
    /// back (`down == false`).
    ///
    /// This is the bridge from the executor's chaos plane to the fabric's
    /// federation: feed the result to
    /// `continuum_fabric::SiteFaults::from_region_transitions` to crash
    /// and recover whole federation sites in sympathy with a device-level
    /// fault schedule. Regions with no devices never transition; link
    /// and endpoint events are ignored (they don't kill brokers).
    pub fn site_transitions(
        &self,
        env: &Env,
        partition: &RegionPartition,
    ) -> Vec<(SimTime, u32, bool)> {
        let n_regions = partition.regions().len();
        let mut alive = vec![0usize; n_regions];
        let mut region_of_dev = Vec::with_capacity(env.fleet.len());
        for dev in env.fleet.devices() {
            let r = partition.region_of(dev.node);
            alive[r] += 1;
            region_of_dev.push(r);
        }
        let mut up = vec![true; env.fleet.len()];
        let mut out = Vec::new();
        for ev in self.schedule.events() {
            let d = ev.target as usize;
            match ev.kind {
                FaultKind::DeviceCrash if d < up.len() && up[d] => {
                    up[d] = false;
                    let r = region_of_dev[d];
                    alive[r] -= 1;
                    if alive[r] == 0 {
                        out.push((ev.at, r as u32, true));
                    }
                }
                FaultKind::DeviceRecover if d < up.len() && !up[d] => {
                    up[d] = true;
                    let r = region_of_dev[d];
                    alive[r] += 1;
                    if alive[r] == 1 {
                        out.push((ev.at, r as u32, false));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    /// Propagation delay elapsed; begin streaming `bytes` (the full item,
    /// or the remainder of a transfer aborted by a link failure) toward
    /// the request's interned `slot` — the slot carries (item, node).
    StartFlow {
        req: usize,
        slot: u32,
        bytes: u64,
    },
    /// The flow the executor predicted to finish first has finished.
    FlowDone(FlowId),
    /// Execution finished. Stale (`epoch` mismatch) if the attempt was
    /// killed by a device crash.
    TaskFinished {
        req: usize,
        task: TaskId,
        epoch: u32,
    },
    /// A failed task's retry delay elapsed; requeue it.
    RetryTask {
        req: usize,
        task: TaskId,
    },
    /// Apply `FaultPlane.schedule.events()[idx]`.
    Fault(usize),
    /// Detection latency elapsed for crash generation `gen` of a device:
    /// re-place its orphaned and queued tasks.
    OrphanSweep {
        dev: usize,
        gen: u32,
    },
    /// Partition mode: a segment's propagation latency elapsed; start
    /// streaming its bytes in the segment region's flow domain.
    PartSeg(Box<TransferMsg>),
    /// Partition mode: final delivery of a transfer at its destination
    /// slot (`msg.next == msg.segs.len()`).
    PartDeliver(Box<TransferMsg>),
    /// Partition mode: the predicted earliest completion in one region's
    /// flow domain has finished.
    PartFlowDone {
        region: u32,
        fid: FlowId,
    },
}

/// One cross-region transfer in flight under partitioned (pinned-task)
/// execution. Self-contained: a shard that owns only a *transit* region
/// of the route needs no request state to forward it — the remaining
/// route segments, byte count, and destination all ride along.
#[derive(Debug, Clone)]
pub(crate) struct TransferMsg {
    /// Global request id (ECMP salts and delivery lookups key off it).
    pub(crate) gid: usize,
    pub(crate) item: DataId,
    /// Final destination node (where the consuming slot lives).
    pub(crate) dst: NodeId,
    pub(crate) bytes: u64,
    /// The route, segmented at region boundaries (never empty).
    pub(crate) segs: Arc<[RouteSeg]>,
    /// Next stage: index of the segment about to run, or `segs.len()`
    /// for the final delivery hop.
    pub(crate) next: u32,
}

/// splitmix64 finalizer: the content-key mixer for partition-mode events.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Event-key classes for partition mode. Every partition-mode event gets a
// key derived purely from its content, so equal-time events pop in the
// same relative order no matter how regions are grouped onto cores — the
// invariant behind the pinned-sharded == pinned-single identity. Arrivals
// keep key zero: their relative order is global-id order in every
// grouping, and key zero sorts them ahead of all keyed events.
const K_FIN: u64 = 1;
const K_RETRY: u64 = 2;
const K_SEG: u64 = 3;
const K_DELIVER: u64 = 4;
const K_FLOW: u64 = 5;

#[inline]
fn part_key(class: u64, a: u64, b: u64, c: u64) -> u64 {
    mix64(mix64(mix64(mix64(class) ^ a) ^ b) ^ c).max(1)
}

#[inline]
fn seg_key(msg: &TransferMsg) -> u64 {
    part_key(
        K_SEG,
        msg.gid as u64,
        u64::from(msg.item.0),
        (u64::from(msg.dst.0) << 32) | u64::from(msg.next),
    )
}

#[inline]
fn deliver_key(msg: &TransferMsg) -> u64 {
    part_key(
        K_DELIVER,
        msg.gid as u64,
        u64::from(msg.item.0),
        u64::from(msg.dst.0),
    )
}

/// Per-flow ECMP salt: stable for a (request, item) pair, never zero so
/// concurrent transfers spread across parallel equal-cost links.
#[inline]
fn xfer_salt(req: usize, item: DataId) -> u64 {
    ((req as u64) << 32) | (item.0 as u64) | (1 << 63)
}

/// Immutable per-request input plan, built once at simulation start: each
/// task's inputs deduped and sorted, CSR-packed. Kills the seed's
/// per-event `t.inputs.clone()` + sort + dedup (arrival and every
/// re-placement re-paid it).
struct ReqPlan {
    /// CSR offsets into `inputs`, length `tasks + 1`.
    in_off: Vec<u32>,
    /// Distinct inputs per task, sorted, grouped by task.
    inputs: Vec<DataId>,
    /// Data-item count of the dag (slot lists are indexed by `DataId.0`).
    n_items: usize,
}

impl ReqPlan {
    fn build(dag: &Dag) -> ReqPlan {
        let mut in_off = Vec::with_capacity(dag.len() + 1);
        let mut inputs: Vec<DataId> = Vec::new();
        in_off.push(0u32);
        for t in dag.tasks() {
            let start = inputs.len();
            inputs.extend_from_slice(&t.inputs);
            inputs[start..].sort_unstable();
            // Dedup the freshly appended range in place.
            let mut w = start;
            for r in start..inputs.len() {
                if w == start || inputs[w - 1] != inputs[r] {
                    inputs[w] = inputs[r];
                    w += 1;
                }
            }
            inputs.truncate(w);
            in_off.push(inputs.len() as u32);
        }
        ReqPlan {
            in_off,
            inputs,
            n_items: dag.data_items().len(),
        }
    }

    /// Distinct, sorted inputs of `t`.
    fn inputs_of(&self, t: TaskId) -> &[DataId] {
        let lo = self.in_off[t.0 as usize] as usize;
        let hi = self.in_off[t.0 as usize + 1] as usize;
        &self.inputs[lo..hi]
    }
}

/// Delivery state of one interned `(item, node)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Nothing moving yet; a producer's publish (or a re-placement's
    /// fetch) will start a delivery.
    Absent,
    /// A transfer toward the node is in progress (or queued behind its
    /// propagation delay / a dead link).
    InFlight,
    /// The item is at the node.
    Present,
}

/// One interned `(item, destination node)` pair of a request.
#[derive(Debug)]
struct ItemSlot {
    item: DataId,
    node: NodeId,
    state: SlotState,
    /// Tasks waiting for the item at this node. Drained when the item
    /// becomes present; a stale waiter (task re-placed elsewhere since)
    /// is skipped by the assignment check at drain time.
    waiters: Vec<TaskId>,
}

/// Dense per-request execution state. The seed kept two
/// `HashMap<(DataId, NodeId), _>`s (item presence and waiter lists) and
/// hashed a composite key on every touch; interning each pair into a slot
/// index at first sight turns all steady-state accesses into vector
/// indexing, and `item_slots` gives a producer's publish direct,
/// NodeId-ordered access to exactly the destinations that registered
/// interest (the seed scanned every waiter key of the whole request, in
/// nondeterministic hash order).
struct ReqState {
    /// Distinct input items still missing, per task.
    missing: Vec<u32>,
    /// Tasks not yet finished.
    unfinished: usize,
    started: Vec<bool>,
    /// Interning table: `(item, node)` -> slot index. Touched once per
    /// pair's first sight (arrival or re-placement), never on the
    /// publish/delivery hot path.
    slot_of: HashMap<(DataId, NodeId), u32>,
    slots: Vec<ItemSlot>,
    /// Slots per data item (indexed by `DataId.0`), kept NodeId-sorted so
    /// publishes deliver in deterministic node order.
    item_slots: Vec<Vec<u32>>,
    /// Partition mode only: every consumer node per produced item
    /// (indexed by `DataId.0`), NodeId-sorted and deduped — *including*
    /// nodes in regions other cores own, which `item_slots` never sees.
    /// Built at arrival from the static placement; empty otherwise.
    fanout: Vec<Vec<NodeId>>,
}

impl ReqState {
    /// Intern `(item, node)`, creating an [`SlotState::Absent`] slot on
    /// first sight.
    fn intern(&mut self, item: DataId, node: NodeId) -> u32 {
        match self.slot_of.entry((item, node)) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let idx = self.slots.len() as u32;
                self.slots.push(ItemSlot {
                    item,
                    node,
                    state: SlotState::Absent,
                    waiters: Vec::new(),
                });
                let slots = &self.slots;
                let by_item = &mut self.item_slots[item.0 as usize];
                let pos = by_item.partition_point(|&s| slots[s as usize].node < node);
                by_item.insert(pos, idx);
                v.insert(idx);
                idx
            }
        }
    }
}

/// Execute a set of placed requests over the shared network and fleet.
///
/// # Panics
/// On workload/placement mismatches (wrong assignment length, disconnected
/// topology, unplaced producers) — programming errors, not runtime states.
pub fn simulate_stream(env: &Env, requests: &[StreamRequest]) -> SimOutcome {
    simulate_stream_with_faults(env, requests, None)
}

/// [`simulate_stream`] with optional fault injection.
pub fn simulate_stream_with_faults(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
) -> SimOutcome {
    simulate_stream_chaos(env, requests, faults, None)
}

/// Pick a route honoring dead links: the usual ECMP path when the fabric
/// is whole, a detour around failed links otherwise (`None` if the
/// endpoints are disconnected right now).
///
/// The degraded regime is memoized through `rcache` (the caller bumps its
/// epoch whenever `dead_links` changes): the Dijkstra detour ignores
/// salts, so all transfers between a node pair share the salt-class-0
/// entry — under chaos churn this turns thousands of per-transfer
/// Dijkstras per epoch into one per pair. The whole-fabric path is *not*
/// cached: `path_ecmp` is already a cheap walk over the prebuilt route
/// table, and measuring showed the cache's hashing costs more than it
/// saves there.
fn route(
    env: &Env,
    rcache: &mut RouteCache,
    src: NodeId,
    dst: NodeId,
    salt: u64,
    dead_links: &[bool],
    n_dead: usize,
) -> Option<Path> {
    if n_dead == 0 {
        env.path_ecmp(src, dst, salt)
    } else {
        rcache.route_with(src, dst, 0, || {
            shortest_path_avoiding(&env.topology, src, dst, dead_links)
        })
    }
}

/// Executor-local observability accumulator.
///
/// The counters are plain integer adds on paths that already mutate
/// state, so they stay on unconditionally (same cost model as the
/// route-cache and calendar counters). `marks` — timestamped points the
/// Perfetto export turns into instants — is only fed when an ambient
/// telemetry sink has tracing enabled.
#[derive(Default)]
struct ExecObs {
    trace_on: bool,
    /// Transfers that found no surviving route and parked in `stalled`.
    stalls: u64,
    /// Output publishes run by finished tasks.
    publishes: u64,
    /// Total destination slots those publishes fanned out to.
    publish_fanout: u64,
    /// Tasks parked with no feasible live device.
    parked: u64,
    marks: Vec<(SimTime, ObsMark)>,
}

enum ObsMark {
    Stall {
        req: usize,
    },
    Replace {
        req: usize,
        task: TaskId,
        dev: DeviceId,
    },
    Park {
        req: usize,
        task: TaskId,
    },
    /// A partition-mode transfer stage left this core for another
    /// shard's region: the tail of a cross-shard flow arrow.
    FlowOut {
        gid: usize,
        item: DataId,
        hop: u32,
        from_region: u32,
        to_region: u32,
    },
    /// A handed-over transfer stage entered this core: the arrow head.
    /// `(gid, item, hop)` matches the sender's [`ObsMark::FlowOut`], so
    /// the synthesizer can stitch the two sides with one flow id.
    FlowIn {
        gid: usize,
        item: DataId,
        hop: u32,
        at_region: u32,
    },
}

impl ExecObs {
    fn stall(&mut self, now: SimTime, req: usize) {
        self.stalls += 1;
        if self.trace_on {
            self.marks.push((now, ObsMark::Stall { req }));
        }
    }

    fn publish(&mut self, fanout: usize) {
        self.publishes += 1;
        self.publish_fanout += fanout as u64;
    }

    fn replaced(&mut self, now: SimTime, req: usize, task: TaskId, dev: DeviceId) {
        if self.trace_on {
            self.marks.push((now, ObsMark::Replace { req, task, dev }));
        }
    }

    fn park(&mut self, now: SimTime, req: usize, task: TaskId) {
        self.parked += 1;
        if self.trace_on {
            self.marks.push((now, ObsMark::Park { req, task }));
        }
    }

    fn flow_out(
        &mut self,
        now: SimTime,
        gid: usize,
        item: DataId,
        hop: u32,
        from_region: u32,
        to_region: u32,
    ) {
        if self.trace_on {
            self.marks.push((
                now,
                ObsMark::FlowOut {
                    gid,
                    item,
                    hop,
                    from_region,
                    to_region,
                },
            ));
        }
    }

    fn flow_in(&mut self, at: SimTime, gid: usize, item: DataId, hop: u32, at_region: u32) {
        if self.trace_on {
            self.marks.push((
                at,
                ObsMark::FlowIn {
                    gid,
                    item,
                    hop,
                    at_region,
                },
            ));
        }
    }
}

/// Deterministic correlation id for one cross-shard transfer hop —
/// computable identically on the sending and receiving core from the
/// envelope contents alone (splitmix64 over the packed triple).
pub(crate) fn flow_hop_id(gid: usize, item: DataId, hop: u32) -> u64 {
    let mut z = (gid as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(item.0) << 32)
        .wrapping_add(u64::from(hop));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`simulate_stream_with_faults`] with an optional infrastructure
/// [`FaultPlane`]. With `plane: None` this is exactly the fault-free
/// executor — same event order, bit-identical results.
pub fn simulate_stream_chaos(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    plane: Option<&FaultPlane>,
) -> SimOutcome {
    // Resolve the ambient telemetry sink ONCE per run; the event loop
    // below never touches thread-local state. With no sink installed the
    // only telemetry cost left in the core is plain counter adds.
    let tele = continuum_obs::ambient();
    let trace_on = tele.as_deref().is_some_and(Telemetry::trace_enabled);
    let collect = tele.is_some();
    let refs: Vec<&StreamRequest> = requests.iter().collect();
    let gids: Vec<usize> = (0..requests.len()).collect();
    let mut core = ExecCore::new(env, refs, gids, faults, plane, None, collect, trace_on);
    core.pump(None);
    assemble(env, requests, plane, None, vec![core.finish()])
}

/// Counter-based fault draw: a pure function of `(seed, request, task,
/// attempt)`. The seed's sequential RNG made each verdict depend on the
/// global order in which attempts completed; deriving an independent
/// stream per attempt keeps verdicts identical no matter how completions
/// interleave — which is what lets a sharded run reproduce the
/// single-queue executor's fault decisions exactly.
fn fault_draw(fs: &FaultSpec, gid: usize, task: TaskId, attempt: u32) -> bool {
    let mut seed = continuum_sim::Rng::new(fs.seed);
    let mut per_req = seed.split(gid as u64);
    let mut per_task = per_req.split(u64::from(task.0));
    per_task.split(u64::from(attempt)).chance(fs.fail_prob)
}

/// Storage of one request slot. Closed-loop cores borrow every request
/// from the caller's slice for the whole run; open-loop cores own each
/// injected request and free the slot (`Free`) when it retires, so memory
/// tracks *active* requests, not total.
enum ReqEntry<'a> {
    Borrowed(&'a StreamRequest),
    Owned(Box<StreamRequest>),
    Free,
}

/// The request in slot `i`. Free function (not a method) so call sites can
/// hold the returned borrow of `reqs` while mutating sibling `ExecCore`
/// fields.
fn req_ref<'b>(reqs: &'b [ReqEntry<'_>], i: usize) -> &'b StreamRequest {
    match &reqs[i] {
        ReqEntry::Borrowed(r) => r,
        ReqEntry::Owned(r) => r,
        ReqEntry::Free => unreachable!("request slot {i} is retired"),
    }
}

/// Bounded per-run aggregation for open-loop (streaming) execution: task
/// records and request latencies fold into log2 histograms instead of
/// accumulating in `ExecutionTrace`, so a million-request run holds O(1)
/// trace memory plus a record buffer bounded by the live-request set.
pub(crate) struct StreamSink {
    /// Request latency (finish - arrival) of every retired request.
    latency: Histogram,
    /// Duration of every folded task attempt.
    task_duration: Histogram,
    /// Folded task attempts per device id.
    tasks_by_device: Vec<u64>,
    /// Task records folded so far (== executed attempts once the run
    /// drains).
    records_folded: u64,
    /// High-water mark of the compacting record buffer.
    peak_record_buf: usize,
    /// Latest request finish seen — the open-loop end of run.
    last_finish: SimTime,
    /// `(finish, latency_ns)` of each retirement since the last drain,
    /// kept only when the driver asked for a completion feed (health
    /// plane); `None` costs nothing per retire.
    completions: Option<Vec<(SimTime, u64)>>,
}

impl StreamSink {
    fn new(n_dev: usize) -> Self {
        StreamSink {
            latency: Histogram::default(),
            task_duration: Histogram::default(),
            tasks_by_device: vec![0; n_dev],
            records_folded: 0,
            peak_record_buf: 0,
            last_finish: SimTime::ZERO,
            completions: None,
        }
    }
}

/// One executor core: the complete event-driven machinery — event queue,
/// flow engine, route cache, dense request state, fault plane — over a
/// subset of the requests. The single-queue executor is exactly one core
/// pumped to completion; the sharded executor (`crate::shard`) runs
/// several cores in bounded time windows and merges their [`CoreParts`].
///
/// Everything a core emits is keyed by *global* ids: task records carry
/// the global request index, ECMP salts and fault draws hash it, and
/// telemetry marks name it. A core's decisions therefore do not depend on
/// how requests were grouped into cores, which is the invariant the
/// sharded-equals-single-queue property rests on.
pub(crate) struct ExecCore<'a> {
    env: &'a Env,
    requests: Vec<ReqEntry<'a>>,
    /// Global request index of each local request.
    gids: Vec<usize>,
    faults: Option<&'a FaultSpec>,
    plane: Option<&'a FaultPlane>,
    /// Restrict orphan re-placement to these devices (`None`: whole
    /// fleet). Sharding sets this so re-placed work stays in the shard.
    mask: Option<Vec<bool>>,
    /// Harvest component counters at finish (an ambient sink exists).
    collect: bool,
    obs: ExecObs,
    /// attempts[(local req, task)] -> tries so far.
    attempts: HashMap<(usize, u32), u32>,
    queue: EventQueue<Ev>,
    network: FlowNetwork,
    rcache: RouteCache,
    free_cores: Vec<u32>,
    device_q: Vec<VecDeque<(usize, TaskId)>>,
    /// Flow -> (local request, destination slot).
    flow_dest: HashMap<FlowId, (usize, u32)>,
    pending_completion: Option<(EventId, FlowId)>,
    /// Mutable copy of each placement; orphan re-placement rewrites it.
    assign: Vec<Vec<DeviceId>>,
    dev_up: Vec<bool>,
    /// Down *and* past its detection sweep: ready work is re-placed
    /// rather than queued there.
    dev_known_down: Vec<bool>,
    /// Crash generation, to match sweeps to the right outage.
    dev_gen: Vec<u32>,
    /// Executing attempts per device: (local req, task, record index).
    running: Vec<Vec<(usize, TaskId, usize)>>,
    /// Tasks killed by a crash, awaiting detection or recovery.
    orphans: Vec<Vec<(usize, TaskId)>>,
    /// Attempt epoch per task; a crash bump invalidates in-flight
    /// finishes.
    attempt_no: Vec<Vec<u32>>,
    finished: Vec<Vec<bool>>,
    /// Tasks with no feasible live device, waiting for a recovery.
    parked: Vec<(usize, TaskId)>,
    /// Transfers with no surviving route, waiting for a link restore:
    /// (local req, destination slot, remaining bytes).
    stalled: Vec<(usize, u32, u64)>,
    dead_links: Vec<bool>,
    n_dead: usize,
    placer: Option<OnlinePlacer>,
    plans: Vec<ReqPlan>,
    states: Vec<ReqState>,
    /// Record `request` fields are GLOBAL ids; `request_arrival` /
    /// `request_finish` are indexed by LOCAL request (mapped at finish).
    trace: ExecutionTrace,
    /// (billed device, bytes) of every non-local transfer. The device is
    /// the actual sender where one exists (a producer's device); external
    /// items from a home node are billed to the first device at that node
    /// (deterministic — `Fleet::at_node` is insertion-ordered), or not at
    /// all if the node hosts no device.
    egress_log: Vec<(Option<DeviceId>, u64)>,
    energy: EnergyMeter,
    cost: CostMeter,
    /// Execution seconds destroyed by crashes, per device id. Summed in
    /// device order at assemble time so the total is independent of how
    /// crash events interleaved across cores.
    lost_dev: Vec<f64>,
    /// Scratch for the masked-liveness vector fed to the placer.
    alive_scratch: Vec<bool>,
    /// In-flight deliveries (slots in `SlotState::InFlight`) per local
    /// request. A request retires only once this hits zero, so no flow or
    /// stalled transfer can touch a freed slot.
    inflight: Vec<u32>,
    /// Scheduled-but-unpopped `TaskFinished` events per local request.
    /// Gates retirement so a stale finish (epoch-bumped by a crash) can
    /// never land on a reused slot with a coincidentally matching epoch.
    pending_fin: Vec<u32>,
    /// Slot has been retired (all per-request state freed).
    retired: Vec<bool>,
    /// Requests whose retirement preconditions may have just been met;
    /// drained by `process_retirements` after each event.
    retire_scan: Vec<usize>,
    /// Live (injected/registered and not yet retired) request count.
    live: usize,
    /// High-water mark of `live`.
    peak_live: usize,
    /// Retired slots available for reuse by `inject_request`.
    free_slots: Vec<usize>,
    /// Global ids of live requests; record compaction keeps only their
    /// task records.
    live_gids: HashSet<usize>,
    /// Compact the record buffer when it reaches this length
    /// (`usize::MAX` in accumulating mode — never).
    compact_at: usize,
    /// `Some` switches the core to open-loop streaming: completed state
    /// folds into bounded histograms and slots are reused. `None` (closed
    /// loop) preserves the accumulate-everything behavior bit for bit.
    sink: Option<StreamSink>,
    /// `Some` switches the core to partitioned ("pinned-task") execution:
    /// tasks run where they were placed, each owned region gets its own
    /// flow domain, and transfers crossing into foreign regions leave
    /// through the outbox. `None` preserves the confined executors bit
    /// for bit.
    part: Option<PartCtx<'a>>,
}

/// Partitioned-execution state bolted onto an [`ExecCore`] by
/// [`ExecCore::enable_partition`]. The core then simulates exactly the
/// regions marked in `owned`: tasks placed there, flows whose current
/// route segment runs there, and deliveries landing there. Anything
/// else either never enters the core (foreign tasks are pre-marked
/// started) or leaves through `outbox` as a self-contained
/// [`TransferMsg`].
struct PartCtx<'a> {
    partition: &'a RegionPartition,
    /// Regions this core simulates, indexed by region id.
    owned: Vec<bool>,
    /// One independent max-min-fair flow domain per owned region (`None`
    /// elsewhere). Contention is resolved per region, never across the
    /// whole topology, so a region's flow trajectories are identical no
    /// matter how regions are grouped onto cores.
    nets: Vec<Option<FlowNetwork>>,
    /// The pending earliest-completion event per owned region.
    pend: Vec<Option<(EventId, FlowId)>>,
    /// In-flight transfer continuations per owned region, keyed by flow.
    cont: Vec<HashMap<FlowId, TransferMsg>>,
    /// Transfer stages bound for regions this core does not own:
    /// `(due time, target region, msg)`. Drained by the shard driver and
    /// delivered to the owning core as conservative envelopes.
    outbox: Vec<(SimTime, u32, TransferMsg)>,
    /// Global request id -> local slot, for delivery lookups.
    local_of_gid: HashMap<usize, usize>,
    /// Streaming mode: `(gid, local finish)` of every request retired
    /// since the last [`ExecCore::take_finished`] drain. The open-loop
    /// shard driver folds these into true request latencies (the max
    /// finish across participating cores).
    finished_log: Vec<(usize, SimTime)>,
}

impl<'a> ExecCore<'a> {
    /// Build a core over `requests` (with their global ids `gids`),
    /// schedule every arrival and fault event, and leave it ready to
    /// [`Self::pump`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        env: &'a Env,
        requests: Vec<&'a StreamRequest>,
        gids: Vec<usize>,
        faults: Option<&'a FaultSpec>,
        plane: Option<&'a FaultPlane>,
        mask: Option<Vec<bool>>,
        collect: bool,
        trace_on: bool,
    ) -> Self {
        assert_eq!(requests.len(), gids.len());
        if let Some(f) = faults {
            assert!(
                (0.0..1.0).contains(&f.fail_prob),
                "fail_prob must be in [0,1)"
            );
            assert!(f.max_attempts >= 1);
        }
        for r in &requests {
            assert_eq!(
                r.placement.assignment.len(),
                r.dag.len(),
                "placement does not match dag '{}'",
                r.dag.name
            );
        }
        let n_dev = env.fleet.len();
        let n_links = env.topology.links().len();
        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            queue.schedule_at(r.arrival, Ev::Arrival(i));
        }
        if let Some(p) = plane {
            for (idx, fe) in p.schedule.events().iter().enumerate() {
                match fe.kind {
                    FaultKind::DeviceCrash | FaultKind::DeviceRecover => assert!(
                        (fe.target as usize) < n_dev,
                        "fault schedule targets device {} but only {n_dev} exist",
                        fe.target
                    ),
                    FaultKind::LinkFail | FaultKind::LinkRestore => assert!(
                        (fe.target as usize) < n_links,
                        "fault schedule targets link {} but only {n_links} exist",
                        fe.target
                    ),
                    // Endpoint faults belong to the fabric broker.
                    FaultKind::EndpointCrash | FaultKind::EndpointRecover => continue,
                }
                queue.schedule_at(fe.at, Ev::Fault(idx));
            }
        }
        let plans: Vec<ReqPlan> = requests.iter().map(|r| ReqPlan::build(&r.dag)).collect();
        let states: Vec<ReqState> = requests
            .iter()
            .zip(&plans)
            .map(|(r, plan)| ReqState {
                missing: r
                    .dag
                    .tasks()
                    .iter()
                    .map(|t| plan.inputs_of(t.id).len() as u32)
                    .collect(),
                unfinished: r.dag.len(),
                started: vec![false; r.dag.len()],
                slot_of: HashMap::new(),
                slots: Vec::new(),
                item_slots: vec![Vec::new(); plan.n_items],
                fanout: Vec::new(),
            })
            .collect();
        let trace = ExecutionTrace {
            request_arrival: requests.iter().map(|r| r.arrival).collect(),
            request_finish: vec![SimTime::ZERO; requests.len()],
            ..Default::default()
        };
        ExecCore {
            env,
            faults,
            plane,
            mask,
            collect,
            obs: ExecObs {
                trace_on,
                ..ExecObs::default()
            },
            attempts: HashMap::new(),
            network: FlowNetwork::new(&env.topology),
            rcache: RouteCache::new(),
            free_cores: env.fleet.devices().iter().map(|d| d.spec.cores).collect(),
            device_q: vec![VecDeque::new(); n_dev],
            flow_dest: HashMap::new(),
            pending_completion: None,
            assign: requests
                .iter()
                .map(|r| r.placement.assignment.clone())
                .collect(),
            dev_up: vec![true; n_dev],
            dev_known_down: vec![false; n_dev],
            dev_gen: vec![0u32; n_dev],
            running: vec![Vec::new(); n_dev],
            orphans: vec![Vec::new(); n_dev],
            attempt_no: requests.iter().map(|r| vec![0; r.dag.len()]).collect(),
            finished: requests.iter().map(|r| vec![false; r.dag.len()]).collect(),
            parked: Vec::new(),
            stalled: Vec::new(),
            dead_links: vec![false; n_links],
            n_dead: 0,
            placer: plane.map(|_| OnlinePlacer::continuum(env)),
            plans,
            states,
            trace,
            egress_log: Vec::new(),
            energy: EnergyMeter::new(&env.fleet),
            cost: CostMeter::new(&env.fleet),
            lost_dev: vec![0.0; n_dev],
            alive_scratch: Vec::new(),
            inflight: vec![0; requests.len()],
            pending_fin: vec![0; requests.len()],
            retired: vec![false; requests.len()],
            retire_scan: Vec::new(),
            live: requests.len(),
            peak_live: requests.len(),
            free_slots: Vec::new(),
            live_gids: HashSet::new(),
            compact_at: usize::MAX,
            sink: None,
            part: None,
            queue,
            requests: requests.into_iter().map(ReqEntry::Borrowed).collect(),
            gids,
        }
    }

    /// Earliest pending event, if any work remains.
    pub(crate) fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Events ever scheduled on this core's calendar — the per-shard
    /// load measure behind the `shard.events` / `shard.largest_fraction`
    /// telemetry.
    pub(crate) fn scheduled_events(&self) -> u64 {
        self.queue.stats().scheduled
    }

    /// Process every event strictly before `horizon` (all events when
    /// `None`). Pumping in windows and pumping once to completion pop the
    /// same events in the same order — the horizon only decides where the
    /// pops pause, never how they sort.
    pub(crate) fn pump(&mut self, horizon: Option<SimTime>) {
        while let Some(t) = self.queue.peek_time() {
            if horizon.is_some_and(|h| t >= h) {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            self.step(now, ev);
            if !self.retire_scan.is_empty() {
                self.process_retirements();
            }
        }
    }

    /// Handle one event. Each event appends to explicit work lists —
    /// slots that became present (`made_present`), devices whose queues
    /// should be rescanned (`dispatch_devices`), tasks needing
    /// re-placement (`to_replace`) — which are drained to a fixed point
    /// after the match, because presence can ready a task on a known-dead
    /// device and a re-placement can find its inputs already co-located.
    fn step(&mut self, now: SimTime, ev: Ev) {
        let env = self.env;
        // Work lists produced by this event.
        let mut made_present: Vec<(usize, u32)> = Vec::new();
        let mut dispatch_devices: Vec<usize> = Vec::new();
        let mut to_replace: Vec<(usize, TaskId)> = Vec::new();
        let mut network_changed = false;
        let mut regions_changed: Vec<u32> = Vec::new();

        match ev {
            Ev::Arrival(req) if self.part.is_some() => {
                self.arrive_part(now, req, &mut made_present, &mut dispatch_devices);
            }
            Ev::Arrival(req) => {
                let r = req_ref(&self.requests, req);
                let gid = self.gids[req];
                // Request external item deliveries and register interest:
                // (slot, home node) pairs needing a fetch, in first-sight
                // order.
                let mut to_deliver: Vec<(u32, NodeId)> = Vec::new();
                {
                    let st = &mut self.states[req];
                    let plan = &self.plans[req];
                    let assign = &self.assign[req];
                    for t in r.dag.tasks() {
                        let dst = env.node_of(assign[t.id.0 as usize]);
                        for &d in plan.inputs_of(t.id) {
                            let slot = st.intern(d, dst);
                            if r.dag.producer(d).is_none()
                                && st.slots[slot as usize].state == SlotState::Absent
                            {
                                let home = r
                                    .dag
                                    .data(d)
                                    .home
                                    .expect("validated dag: external has home");
                                st.slots[slot as usize].state = SlotState::InFlight;
                                self.inflight[req] += 1;
                                to_deliver.push((slot, home));
                            }
                            // Produced items stay Absent; the producer's
                            // publish delivers to this slot.
                            st.slots[slot as usize].waiters.push(t.id);
                        }
                    }
                }
                for (slot, src) in to_deliver {
                    let (d, dst) = {
                        let s = &self.states[req].slots[slot as usize];
                        (s.item, s.node)
                    };
                    if src == dst {
                        made_present.push((req, slot));
                    } else {
                        let bytes = r.dag.data(d).bytes;
                        if self.sink.is_none() {
                            self.egress_log
                                .push((env.fleet.at_node(src).first().copied(), bytes));
                        } else {
                            self.trace.bytes_moved += bytes;
                            self.trace.transfers += 1;
                            if let Some(dev) = env.fleet.at_node(src).first().copied() {
                                self.cost.record_egress(&env.fleet, dev, bytes);
                            }
                        }
                        match route(
                            env,
                            &mut self.rcache,
                            src,
                            dst,
                            xfer_salt(gid, d),
                            &self.dead_links,
                            self.n_dead,
                        ) {
                            Some(path) => {
                                self.queue.schedule_at(
                                    now + path.latency,
                                    Ev::StartFlow { req, slot, bytes },
                                );
                            }
                            None => {
                                assert!(self.n_dead > 0, "disconnected topology");
                                self.obs.stall(now, gid);
                                self.stalled.push((req, slot, bytes));
                            }
                        }
                    }
                }
                // Tasks with no inputs are immediately ready.
                for t in r.dag.tasks() {
                    if self.states[req].missing[t.id.0 as usize] == 0 {
                        let dev = self.assign[req][t.id.0 as usize];
                        if self.dev_known_down[dev.0 as usize] {
                            to_replace.push((req, t.id));
                        } else {
                            self.device_q[dev.0 as usize].push_back((req, t.id));
                            dispatch_devices.push(dev.0 as usize);
                        }
                    }
                }
            }
            Ev::StartFlow { req, slot, bytes } => {
                let r = req_ref(&self.requests, req);
                let gid = self.gids[req];
                let (item, dst) = {
                    let s = &self.states[req].slots[slot as usize];
                    (s.item, s.node)
                };
                // Source: home or producer's node — only needed for the
                // path; recompute from whichever is set.
                let src = match r.dag.producer(item) {
                    None => r.dag.data(item).home.expect("external item has home"),
                    Some(p) => env.node_of(self.assign[req][p.0 as usize]),
                };
                match route(
                    env,
                    &mut self.rcache,
                    src,
                    dst,
                    xfer_salt(gid, item),
                    &self.dead_links,
                    self.n_dead,
                ) {
                    Some(path) => match self.network.start(now, &path, bytes) {
                        Some(fid) => {
                            self.flow_dest.insert(fid, (req, slot));
                            network_changed = true;
                        }
                        None => made_present.push((req, slot)),
                    },
                    None => {
                        assert!(self.n_dead > 0, "disconnected topology");
                        self.obs.stall(now, gid);
                        self.stalled.push((req, slot, bytes));
                    }
                }
            }
            Ev::FlowDone(fid) => {
                // Only the currently pending completion is live; stale
                // events were cancelled.
                debug_assert_eq!(self.pending_completion.map(|(_, f)| f), Some(fid));
                self.pending_completion = None;
                self.network.remove(now, fid);
                let (req, slot) = self.flow_dest.remove(&fid).expect("unknown flow");
                made_present.push((req, slot));
                network_changed = true;
            }
            Ev::TaskFinished { req, task, epoch } => {
                // Every scheduled finish — live or stale — accounts here;
                // the request cannot retire while one is outstanding.
                self.pending_fin[req] -= 1;
                self.retire_scan.push(req);
                if epoch != self.attempt_no[req][task.0 as usize] {
                    return; // this attempt was killed by a device crash
                }
                let r = req_ref(&self.requests, req);
                let gid = self.gids[req];
                let dev = self.assign[req][task.0 as usize];
                let spec = &env.fleet.device(dev).spec;
                let need = r.dag.task(task).occupancy(spec.cores);
                self.free_cores[dev.0 as usize] += need;
                let pos = self.running[dev.0 as usize]
                    .iter()
                    .position(|&(rq, t, _)| rq == req && t == task)
                    .expect("finished task is running");
                self.running[dev.0 as usize].swap_remove(pos);

                // Fault injection: this attempt may fail at completion.
                if let Some(fs) = self.faults {
                    let tries = self.attempts.entry((req, task.0)).or_insert(1);
                    if fault_draw(fs, gid, task, *tries) {
                        assert!(
                            *tries < fs.max_attempts,
                            "task {} of request {gid} exhausted {} attempts",
                            task,
                            fs.max_attempts
                        );
                        *tries += 1;
                        self.trace.failed_attempts += 1;
                        self.states[req].started[task.0 as usize] = false;
                        let retry = Ev::RetryTask { req, task };
                        if self.part.is_some() {
                            let key = part_key(K_RETRY, gid as u64, u64::from(task.0), 0);
                            self.queue
                                .schedule_keyed_at(now + fs.retry_delay, key, retry);
                        } else {
                            self.queue.schedule_at(now + fs.retry_delay, retry);
                        }
                        // Cores were already freed above; dispatch waiting
                        // work on this device, then bail without
                        // publishing outputs.
                        self.dispatch_queue(dev.0 as usize, now);
                        return;
                    }
                }

                self.finished[req][task.0 as usize] = true;
                let st = &mut self.states[req];
                st.unfinished -= 1;
                let done = st.unfinished == 0;
                if done {
                    self.trace.request_finish[req] = now;
                }
                // Publish outputs to their consumers: every node with a
                // registered slot still missing the item, in NodeId order.
                let my_node = env.node_of(dev);
                if self.part.is_some() {
                    self.publish_part(now, req, task, dev, my_node, &mut made_present);
                } else {
                    let st = &mut self.states[req];
                    let mut to_deliver: Vec<u32> = Vec::new();
                    for &out in &r.dag.task(task).outputs {
                        for i in 0..st.item_slots[out.0 as usize].len() {
                            let slot = st.item_slots[out.0 as usize][i];
                            if st.slots[slot as usize].state == SlotState::Absent {
                                st.slots[slot as usize].state = SlotState::InFlight;
                                self.inflight[req] += 1;
                                to_deliver.push(slot);
                            }
                        }
                    }
                    self.obs.publish(to_deliver.len());
                    for slot in to_deliver {
                        let (d, dst) = {
                            let s = &self.states[req].slots[slot as usize];
                            (s.item, s.node)
                        };
                        if dst == my_node {
                            made_present.push((req, slot));
                        } else {
                            let bytes = r.dag.data(d).bytes;
                            // Egress billed to the device that actually
                            // produced (and sends) the item, not an
                            // arbitrary device at its node.
                            if self.sink.is_none() {
                                self.egress_log.push((Some(dev), bytes));
                            } else {
                                self.trace.bytes_moved += bytes;
                                self.trace.transfers += 1;
                                self.cost.record_egress(&env.fleet, dev, bytes);
                            }
                            match route(
                                env,
                                &mut self.rcache,
                                my_node,
                                dst,
                                xfer_salt(gid, d),
                                &self.dead_links,
                                self.n_dead,
                            ) {
                                Some(path) => {
                                    self.queue.schedule_at(
                                        now + path.latency,
                                        Ev::StartFlow { req, slot, bytes },
                                    );
                                }
                                None => {
                                    assert!(self.n_dead > 0, "disconnected topology");
                                    self.obs.stall(now, gid);
                                    self.stalled.push((req, slot, bytes));
                                }
                            }
                        }
                    }
                }
            }
            Ev::RetryTask { req, task } => {
                let dev = self.assign[req][task.0 as usize];
                if self.dev_known_down[dev.0 as usize] {
                    to_replace.push((req, task));
                } else {
                    self.device_q[dev.0 as usize].push_back((req, task));
                    dispatch_devices.push(dev.0 as usize);
                }
            }
            Ev::Fault(idx) => {
                let fe = self
                    .plane
                    .expect("fault event implies plane")
                    .schedule
                    .events()[idx];
                match fe.kind {
                    FaultKind::DeviceCrash => {
                        let d = fe.target as usize;
                        if self.dev_up[d] {
                            self.dev_up[d] = false;
                            self.dev_gen[d] += 1;
                            self.trace.device_crashes += 1;
                            // Kill the running attempts: elapsed execution
                            // is destroyed (energy/cost stay charged — the
                            // hardware did burn them). The tasks become
                            // orphans awaiting detection or recovery.
                            for (rq, t, rec) in std::mem::take(&mut self.running[d]) {
                                let started_at = self.trace.records[rec].start;
                                self.trace.records[rec].finish = now; // truncate
                                self.lost_dev[d] += now.since(started_at).as_secs_f64();
                                self.trace.killed_attempts += 1;
                                self.attempt_no[rq][t.0 as usize] += 1;
                                self.states[rq].started[t.0 as usize] = false;
                                self.orphans[d].push((rq, t));
                            }
                            self.free_cores[d] = 0;
                            let det = self.plane.expect("checked above").detection;
                            self.queue.schedule_at(
                                now + det,
                                Ev::OrphanSweep {
                                    dev: d,
                                    gen: self.dev_gen[d],
                                },
                            );
                        }
                    }
                    FaultKind::DeviceRecover => {
                        let d = fe.target as usize;
                        if !self.dev_up[d] {
                            self.dev_up[d] = true;
                            self.dev_known_down[d] = false;
                            self.free_cores[d] = env.fleet.devices()[d].spec.cores;
                            // Undetected orphans restart in place: their
                            // inputs already live at this node.
                            for (rq, t) in std::mem::take(&mut self.orphans[d]) {
                                self.device_q[d].push_back((rq, t));
                            }
                            dispatch_devices.push(d);
                            // Parked tasks get another placement attempt.
                            to_replace.append(&mut self.parked);
                        }
                    }
                    FaultKind::LinkFail => {
                        let l = fe.target as usize;
                        if !self.dead_links[l] {
                            self.dead_links[l] = true;
                            self.n_dead += 1;
                            self.rcache.bump_epoch();
                            self.trace.link_failures += 1;
                            for a in self.network.fail_link(now, LinkId(l as u32)) {
                                let (rq, slot) = self
                                    .flow_dest
                                    .remove(&a.id)
                                    .expect("aborted flow is tracked");
                                // Resume the remainder over the surviving
                                // topology (transferred bytes arrived;
                                // egress was billed at initiation).
                                let rest = (a.remaining.ceil() as u64).max(1);
                                self.queue.schedule_at(
                                    now,
                                    Ev::StartFlow {
                                        req: rq,
                                        slot,
                                        bytes: rest,
                                    },
                                );
                            }
                            network_changed = true;
                        }
                    }
                    FaultKind::LinkRestore => {
                        let l = fe.target as usize;
                        if self.dead_links[l] {
                            self.dead_links[l] = false;
                            self.n_dead -= 1;
                            self.rcache.bump_epoch();
                            self.network.restore_link(now, LinkId(l as u32));
                            network_changed = true;
                            // Stalled transfers may be routable again.
                            for (rq, slot, bytes) in std::mem::take(&mut self.stalled) {
                                self.queue.schedule_at(
                                    now,
                                    Ev::StartFlow {
                                        req: rq,
                                        slot,
                                        bytes,
                                    },
                                );
                            }
                        }
                    }
                    FaultKind::EndpointCrash | FaultKind::EndpointRecover => {
                        unreachable!("endpoint faults are not scheduled here")
                    }
                }
            }
            Ev::OrphanSweep { dev, gen } => {
                // Stale if the device recovered (or crashed again) before
                // this sweep fired.
                if !self.dev_up[dev] && self.dev_gen[dev] == gen {
                    self.dev_known_down[dev] = true;
                    to_replace.extend(std::mem::take(&mut self.orphans[dev]));
                    to_replace.extend(self.device_q[dev].drain(..));
                }
            }
            Ev::PartSeg(ref msg) => {
                let msg: TransferMsg = (**msg).clone();
                let part = self
                    .part
                    .as_mut()
                    .expect("partition event without partition");
                let seg = &msg.segs[msg.next as usize];
                let r = seg.region as usize;
                debug_assert!(part.owned[r], "segment region not owned by this core");
                let path = seg.as_path();
                let fid = part.nets[r]
                    .as_mut()
                    .expect("owned region has a flow domain")
                    .start(now, &path, msg.bytes)
                    .expect("route segments always contain links");
                part.cont[r].insert(fid, msg);
                regions_changed.push(r as u32);
            }
            Ev::PartDeliver(ref msg) => {
                let part = self
                    .part
                    .as_mut()
                    .expect("partition event without partition");
                let req = *part
                    .local_of_gid
                    .get(&msg.gid)
                    .expect("delivery targets a participating request");
                let st = &mut self.states[req];
                let slot = *st
                    .slot_of
                    .get(&(msg.item, msg.dst))
                    .expect("delivery slot interned at arrival");
                // Remote-produced items go Absent -> InFlight here (their
                // producer's core could not touch this slot); external
                // fetches were already marked InFlight at arrival.
                if st.slots[slot as usize].state == SlotState::Absent {
                    st.slots[slot as usize].state = SlotState::InFlight;
                    self.inflight[req] += 1;
                }
                made_present.push((req, slot));
            }
            Ev::PartFlowDone { region, fid } => {
                let part = self
                    .part
                    .as_mut()
                    .expect("partition event without partition");
                let r = region as usize;
                debug_assert_eq!(part.pend[r].map(|(_, f)| f), Some(fid));
                part.pend[r] = None;
                part.nets[r]
                    .as_mut()
                    .expect("owned region has a flow domain")
                    .remove(now, fid);
                let msg = part.cont[r].remove(&fid).expect("flow has a continuation");
                regions_changed.push(region);
                self.part_forward(now, msg);
            }
        }

        // Drain presence notifications and fault re-placements — each can
        // feed the other (a new item can ready a task whose device is
        // known-dead; a re-placement can find its inputs co-located).
        while !made_present.is_empty() || !to_replace.is_empty() {
            for (req, slot) in std::mem::take(&mut made_present) {
                let st = &mut self.states[req];
                debug_assert_eq!(st.slots[slot as usize].state, SlotState::InFlight);
                st.slots[slot as usize].state = SlotState::Present;
                self.inflight[req] -= 1;
                if self.inflight[req] == 0 {
                    // Last in-flight delivery: the request may now satisfy
                    // every retirement precondition (e.g. a straggler
                    // arriving after its final task finished).
                    self.retire_scan.push(req);
                }
                let node = st.slots[slot as usize].node;
                for t in std::mem::take(&mut st.slots[slot as usize].waiters) {
                    // A waiter only counts if this task actually runs here.
                    let dev = self.assign[req][t.0 as usize];
                    if env.node_of(dev) != node {
                        continue;
                    }
                    let m = &mut st.missing[t.0 as usize];
                    debug_assert!(*m > 0);
                    *m -= 1;
                    if *m == 0 {
                        if self.dev_known_down[dev.0 as usize] {
                            to_replace.push((req, t));
                        } else {
                            self.device_q[dev.0 as usize].push_back((req, t));
                            dispatch_devices.push(dev.0 as usize);
                        }
                    }
                }
            }
            for (req, task) in std::mem::take(&mut to_replace) {
                self.replace_task(req, task, now, &mut dispatch_devices, &mut made_present);
            }
        }

        // Dispatch: first-fit scan of each touched device queue, plus any
        // device that just freed cores.
        if let Ev::TaskFinished { req, task, .. } = &ev {
            let dev = self.assign[*req][task.0 as usize];
            dispatch_devices.push(dev.0 as usize);
        }
        dispatch_devices.sort_unstable();
        dispatch_devices.dedup();
        for di in dispatch_devices {
            self.dispatch_queue(di, now);
        }

        // Re-arm the single pending flow-completion event.
        if network_changed {
            if let Some((eid, _)) = self.pending_completion.take() {
                self.queue.cancel(eid);
            }
            if let Some((t, fid)) = self.network.next_completion() {
                let eid = self.queue.schedule_at(t.max(now), Ev::FlowDone(fid));
                self.pending_completion = Some((eid, fid));
            }
        }

        // Partition mode: re-arm the pending completion of every region
        // domain this event touched.
        if !regions_changed.is_empty() {
            regions_changed.sort_unstable();
            regions_changed.dedup();
            for r in regions_changed {
                self.rearm_region(now, r);
            }
        }
    }

    /// Cancel and re-schedule the earliest-completion event of one owned
    /// region's flow domain. The event key is a pure function of the
    /// region id, so equal-time re-arms of different regions sort
    /// identically no matter how regions are grouped onto cores.
    fn rearm_region(&mut self, now: SimTime, region: u32) {
        let part = self.part.as_mut().expect("partition mode");
        let r = region as usize;
        if let Some((eid, _)) = part.pend[r].take() {
            self.queue.cancel(eid);
        }
        let next = part.nets[r]
            .as_mut()
            .expect("owned region has a flow domain")
            .next_completion();
        if let Some((t, fid)) = next {
            let key = part_key(K_FLOW, u64::from(region), 0, 0);
            let eid =
                self.queue
                    .schedule_keyed_at(t.max(now), key, Ev::PartFlowDone { region, fid });
            self.part.as_mut().expect("partition mode").pend[r] = Some((eid, fid));
        }
    }

    /// Partition-mode arrival: register interest only for tasks placed in
    /// regions this core owns, pre-mark everything else as started
    /// (foreign — another core runs it), and initiate exactly the
    /// external fetches whose *home* region this core owns. Every
    /// participating core scans the same request in the same task order,
    /// so the per-`(item, destination)` first-sight dedup agrees across
    /// cores without any coordination.
    fn arrive_part(
        &mut self,
        now: SimTime,
        req: usize,
        made_present: &mut Vec<(usize, u32)>,
        dispatch_devices: &mut Vec<usize>,
    ) {
        let env = self.env;
        let r = req_ref(&self.requests, req);
        let gid = self.gids[req];
        // (item, home, destination, bytes) fetches this core initiates,
        // in first-sight order.
        let mut sends: Vec<(DataId, NodeId, NodeId, u64)> = Vec::new();
        {
            let part = self.part.as_ref().expect("partition mode");
            let partition = part.partition;
            let st = &mut self.states[req];
            let plan = &self.plans[req];
            let assign = &self.assign[req];
            let mut fanout: Vec<Vec<NodeId>> = vec![Vec::new(); plan.n_items];
            let mut owned_tasks = 0usize;
            let mut seen: HashSet<(DataId, NodeId)> = HashSet::new();
            for t in r.dag.tasks() {
                let dst = env.node_of(assign[t.id.0 as usize]);
                let dst_owned = part.owned[partition.region_of(dst)];
                if dst_owned {
                    owned_tasks += 1;
                } else {
                    st.started[t.id.0 as usize] = true;
                }
                for &d in plan.inputs_of(t.id) {
                    let external = r.dag.producer(d).is_none();
                    if !external {
                        fanout[d.0 as usize].push(dst);
                    }
                    if dst_owned {
                        let slot = st.intern(d, dst);
                        if external && st.slots[slot as usize].state == SlotState::Absent {
                            let home = r
                                .dag
                                .data(d)
                                .home
                                .expect("validated dag: external has home");
                            st.slots[slot as usize].state = SlotState::InFlight;
                            self.inflight[req] += 1;
                            if home == dst {
                                made_present.push((req, slot));
                            }
                        }
                        st.slots[slot as usize].waiters.push(t.id);
                    }
                    if external {
                        let home = r
                            .dag
                            .data(d)
                            .home
                            .expect("validated dag: external has home");
                        if home != dst
                            && part.owned[partition.region_of(home)]
                            && seen.insert((d, dst))
                        {
                            sends.push((d, home, dst, r.dag.data(d).bytes));
                        }
                    }
                }
            }
            st.unfinished = owned_tasks;
            for v in &mut fanout {
                v.sort_unstable();
                v.dedup();
            }
            st.fanout = fanout;
        }
        // Egress billed by the initiating (home-owning) core only, so
        // merged totals count each transfer exactly once.
        for (d, home, dst, bytes) in sends {
            if self.sink.is_none() {
                self.egress_log
                    .push((env.fleet.at_node(home).first().copied(), bytes));
            } else {
                self.trace.bytes_moved += bytes;
                self.trace.transfers += 1;
                if let Some(dev) = env.fleet.at_node(home).first().copied() {
                    self.cost.record_egress(&env.fleet, dev, bytes);
                }
            }
            self.part_send(now, gid, d, home, dst, bytes);
        }
        // Owned tasks with no inputs are immediately ready. Foreign tasks
        // were pre-marked started, so the scan skips them.
        let n_tasks = self.finished[req].len();
        for ti in 0..n_tasks {
            let st = &self.states[req];
            if !st.started[ti] && st.missing[ti] == 0 {
                let dev = self.assign[req][ti];
                self.device_q[dev.0 as usize].push_back((req, TaskId(ti as u32)));
                dispatch_devices.push(dev.0 as usize);
            }
        }
        // A core whose only stake was initiating fetches (zero owned
        // tasks) may already satisfy every retirement precondition.
        if self.states[req].unfinished == 0 {
            self.retire_scan.push(req);
        }
    }

    /// Partition-mode publish: deliver a finished task's outputs to every
    /// consumer node from the static fan-out — locally when the consumer
    /// is co-located, over segmented transfers otherwise (including
    /// consumers in regions owned by other cores).
    fn publish_part(
        &mut self,
        now: SimTime,
        req: usize,
        task: TaskId,
        dev: DeviceId,
        my_node: NodeId,
        made_present: &mut Vec<(usize, u32)>,
    ) {
        let r = req_ref(&self.requests, req);
        let gid = self.gids[req];
        let mut sends: Vec<(DataId, NodeId, u64)> = Vec::new();
        let mut n_publish = 0usize;
        {
            let st = &mut self.states[req];
            for &out in &r.dag.task(task).outputs {
                for i in 0..st.fanout[out.0 as usize].len() {
                    let dst = st.fanout[out.0 as usize][i];
                    n_publish += 1;
                    if dst == my_node {
                        let slot = *st
                            .slot_of
                            .get(&(out, dst))
                            .expect("co-located consumer interned at arrival");
                        debug_assert_eq!(st.slots[slot as usize].state, SlotState::Absent);
                        st.slots[slot as usize].state = SlotState::InFlight;
                        self.inflight[req] += 1;
                        made_present.push((req, slot));
                    } else {
                        sends.push((out, dst, r.dag.data(out).bytes));
                    }
                }
            }
        }
        self.obs.publish(n_publish);
        for (d, dst, bytes) in sends {
            // Egress billed to the producing device by its own core; the
            // consumer's core never logs this transfer.
            if self.sink.is_none() {
                self.egress_log.push((Some(dev), bytes));
            } else {
                self.trace.bytes_moved += bytes;
                self.trace.transfers += 1;
                self.cost.record_egress(&self.env.fleet, dev, bytes);
            }
            self.part_send(now, gid, d, my_node, dst, bytes);
        }
    }

    /// Begin a partitioned transfer: segment the route at region
    /// boundaries and schedule the first stage after the first segment's
    /// propagation latency. The initiating core owns the source region,
    /// so the first segment always runs locally.
    fn part_send(
        &mut self,
        now: SimTime,
        gid: usize,
        item: DataId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) {
        debug_assert_ne!(src, dst, "local presence is handled by the caller");
        let path = route(
            self.env,
            &mut self.rcache,
            src,
            dst,
            xfer_salt(gid, item),
            &self.dead_links,
            self.n_dead,
        )
        .expect("partition mode runs without link faults");
        let part = self.part.as_ref().expect("partition mode");
        let segs: Arc<[RouteSeg]> = part
            .partition
            .segment_route(&self.env.topology, &path)
            .into();
        debug_assert!(
            part.owned[segs[0].region as usize],
            "sender owns the source region"
        );
        let msg = TransferMsg {
            gid,
            item,
            dst,
            bytes,
            segs,
            next: 0,
        };
        let at = now + msg.segs[0].latency;
        let key = seg_key(&msg);
        self.queue
            .schedule_keyed_at(at, key, Ev::PartSeg(Box::new(msg)));
    }

    /// Advance a transfer past its just-finished stage: pay the handoff
    /// gap (the boundary link's propagation latency), then either run the
    /// next stage locally or stage it in the outbox for the core owning
    /// the target region.
    fn part_forward(&mut self, now: SimTime, mut msg: TransferMsg) {
        let part = self.part.as_ref().expect("partition mode");
        let gap = msg.segs[msg.next as usize].gap;
        msg.next += 1;
        let (at, target) = if (msg.next as usize) < msg.segs.len() {
            let seg = &msg.segs[msg.next as usize];
            (now + gap + seg.latency, seg.region)
        } else {
            (now + gap, part.partition.region_of(msg.dst) as u32)
        };
        if part.owned[target as usize] {
            let (key, ev) = if (msg.next as usize) < msg.segs.len() {
                (seg_key(&msg), Ev::PartSeg(Box::new(msg)))
            } else {
                (deliver_key(&msg), Ev::PartDeliver(Box::new(msg)))
            };
            self.queue.schedule_keyed_at(at, key, ev);
        } else {
            let from_region = msg.segs[(msg.next - 1) as usize].region;
            self.obs
                .flow_out(now, msg.gid, msg.item, msg.next, from_region, target);
            self.part
                .as_mut()
                .expect("partition mode")
                .outbox
                .push((at, target, msg));
        }
    }

    /// Inject one transfer stage handed over from another core (its due
    /// time is past the sender's window horizon, so it sorts safely into
    /// this core's calendar).
    pub(crate) fn receive_part(&mut self, at: SimTime, msg: TransferMsg) {
        if self.obs.trace_on {
            let at_region = if (msg.next as usize) < msg.segs.len() {
                msg.segs[msg.next as usize].region
            } else {
                self.part
                    .as_ref()
                    .expect("partition mode")
                    .partition
                    .region_of(msg.dst) as u32
            };
            self.obs.flow_in(at, msg.gid, msg.item, msg.next, at_region);
        }
        let (key, ev) = if (msg.next as usize) < msg.segs.len() {
            (seg_key(&msg), Ev::PartSeg(Box::new(msg)))
        } else {
            (deliver_key(&msg), Ev::PartDeliver(Box::new(msg)))
        };
        self.queue.schedule_keyed_at(at, key, ev);
    }

    /// Drain transfer stages bound for regions other cores own.
    pub(crate) fn take_outbox(&mut self) -> Vec<(SimTime, u32, TransferMsg)> {
        std::mem::take(&mut self.part.as_mut().expect("partition mode").outbox)
    }

    /// Drain `(gid, local finish)` of requests retired since the last
    /// call (partition + streaming mode only).
    pub(crate) fn take_finished(&mut self) -> Vec<(usize, SimTime)> {
        std::mem::take(&mut self.part.as_mut().expect("partition mode").finished_log)
    }

    /// First-fit scan of one device's ready queue: start every queued
    /// task that fits in the currently free cores.
    fn dispatch_queue(&mut self, di: usize, now: SimTime) {
        let spec = &self.env.fleet.devices()[di].spec;
        let mut i = 0;
        while i < self.device_q[di].len() {
            let (req, t) = self.device_q[di][i];
            let task = req_ref(&self.requests, req).dag.task(t);
            let need = task.occupancy(spec.cores);
            if need <= self.free_cores[di] && !self.states[req].started[t.0 as usize] {
                self.device_q[di].remove(i);
                self.free_cores[di] -= need;
                self.states[req].started[t.0 as usize] = true;
                let dur = spec.compute_time_parallel(task.work_flops, task.parallelism);
                let dev_id = self.assign[req][t.0 as usize];
                debug_assert_eq!(dev_id.0 as usize, di);
                self.running[di].push((req, t, self.trace.records.len()));
                self.trace.records.push(TaskRecord {
                    request: self.gids[req],
                    task: t,
                    device: dev_id,
                    cores: need,
                    start: now,
                    finish: now + dur,
                });
                self.energy.record_busy(&self.env.fleet, dev_id, need, dur);
                self.cost
                    .record_occupancy(&self.env.fleet, dev_id, need, dur);
                let epoch = self.attempt_no[req][t.0 as usize];
                self.pending_fin[req] += 1;
                let fin = Ev::TaskFinished {
                    req,
                    task: t,
                    epoch,
                };
                if self.part.is_some() {
                    let key = part_key(K_FIN, self.gids[req] as u64, u64::from(t.0), 0);
                    self.queue.schedule_keyed_at(now + dur, key, fin);
                } else {
                    self.queue.schedule_at(now + dur, fin);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Re-place one orphaned task onto a surviving device, re-resolving
    /// its inputs at the new node: items already present there are
    /// reused, items in flight are awaited, missing items are re-fetched
    /// from their home or their (finished) producer's current node, and
    /// items whose producer has not finished yet will be delivered by the
    /// producer's publish (the waiter registration below is what its
    /// publish scan picks up).
    ///
    /// If no feasible device is alive right now the task parks until the
    /// next recovery event.
    fn replace_task(
        &mut self,
        req: usize,
        task: TaskId,
        now: SimTime,
        dispatch_devices: &mut Vec<usize>,
        made_present: &mut Vec<(usize, u32)>,
    ) {
        let env = self.env;
        let r = req_ref(&self.requests, req);
        let gid = self.gids[req];
        let t = r.dag.task(task);
        let ins = self.plans[req].inputs_of(task);
        // Where each input can be fetched from right now, for the placer's
        // finish estimate (external items from home; produced items from
        // the producer's current device).
        let assign_req = &self.assign[req];
        let input_view: Vec<(NodeId, SimTime, u64)> = ins
            .iter()
            .map(|&d| {
                let item = r.dag.data(d);
                let src = match r.dag.producer(d) {
                    None => item.home.expect("validated dag: external has home"),
                    Some(p) => env.node_of(assign_req[p.0 as usize]),
                };
                (src, now, item.bytes)
            })
            .collect();
        // Re-placement candidates: alive, and inside the core's device
        // mask when one is set (sharding keeps re-placed work local).
        let alive: &[bool] = match &self.mask {
            None => &self.dev_up,
            Some(m) => {
                self.alive_scratch.clear();
                self.alive_scratch.extend(
                    self.dev_up
                        .iter()
                        .zip(m.iter())
                        .map(|(&up, &inm)| up && inm),
                );
                &self.alive_scratch
            }
        };
        let placer = self
            .placer
            .as_mut()
            .expect("re-placement implies a fault plane");
        let Some((dev, _fin)) = placer.place_task(env, t, &input_view, now, alive) else {
            self.obs.park(now, gid, task);
            self.parked.push((req, task));
            return;
        };
        self.assign[req][task.0 as usize] = dev;
        self.trace.replacements += 1;
        self.obs.replaced(now, gid, task, dev);
        let dst = env.node_of(dev);
        let mut fetches: Vec<(u32, Option<DeviceId>, NodeId)> = Vec::new();
        let st = &mut self.states[req];
        let mut miss = 0u32;
        for &d in self.plans[req].inputs_of(task) {
            let slot = st.intern(d, dst);
            match st.slots[slot as usize].state {
                SlotState::Present => continue,
                SlotState::InFlight => {
                    miss += 1;
                    let w = &mut st.slots[slot as usize].waiters;
                    if !w.contains(&task) {
                        w.push(task);
                    }
                    continue;
                }
                SlotState::Absent => {}
            }
            miss += 1;
            let w = &mut st.slots[slot as usize].waiters;
            if !w.contains(&task) {
                w.push(task);
            }
            // Can the item be fetched right now, from which device and
            // node?
            let fetch = match r.dag.producer(d) {
                None => {
                    let home = r
                        .dag
                        .data(d)
                        .home
                        .expect("validated dag: external has home");
                    Some((env.fleet.at_node(home).first().copied(), home))
                }
                Some(p) => self.finished[req][p.0 as usize].then(|| {
                    let pdev = self.assign[req][p.0 as usize];
                    (Some(pdev), env.node_of(pdev))
                }),
            };
            let Some((src_dev, src)) = fetch else {
                continue; // producer unfinished: its publish will deliver
            };
            st.slots[slot as usize].state = SlotState::InFlight;
            self.inflight[req] += 1;
            fetches.push((slot, src_dev, src));
        }
        st.missing[task.0 as usize] = miss;
        for (slot, src_dev, src) in fetches {
            let d = self.states[req].slots[slot as usize].item;
            let bytes = r.dag.data(d).bytes;
            if src == dst {
                made_present.push((req, slot));
            } else {
                if self.sink.is_none() {
                    self.egress_log.push((src_dev, bytes));
                } else {
                    self.trace.bytes_moved += bytes;
                    self.trace.transfers += 1;
                    if let Some(dev) = src_dev {
                        self.cost.record_egress(&env.fleet, dev, bytes);
                    }
                }
                match route(
                    env,
                    &mut self.rcache,
                    src,
                    dst,
                    xfer_salt(gid, d),
                    &self.dead_links,
                    self.n_dead,
                ) {
                    Some(path) => {
                        self.queue
                            .schedule_at(now + path.latency, Ev::StartFlow { req, slot, bytes });
                    }
                    None => {
                        assert!(self.n_dead > 0, "disconnected topology");
                        self.obs.stall(now, gid);
                        self.stalled.push((req, slot, bytes));
                    }
                }
            }
        }
        if miss == 0 {
            self.device_q[dev.0 as usize].push_back((req, task));
            dispatch_devices.push(dev.0 as usize);
        }
    }

    /// Switch the core to open-loop streaming *before* any request is
    /// injected: completed requests retire (slots freed and reused), task
    /// records compact into histograms, and egress is billed immediately
    /// instead of logged. Closed-loop cores never call this, so their
    /// behavior is untouched.
    pub(crate) fn enable_streaming(&mut self) {
        assert!(
            self.requests.is_empty(),
            "enable streaming before injecting requests"
        );
        self.sink = Some(StreamSink::new(self.env.fleet.len()));
        self.compact_at = 4096;
    }

    /// Switch the core to partitioned ("pinned-task") execution *before*
    /// pumping any event: tasks run exactly where they were placed, each
    /// owned region gets its own flow domain, and transfer stages bound
    /// for regions other cores own leave through [`Self::take_outbox`].
    /// Incompatible with the infrastructure fault plane — re-placement
    /// would migrate tasks across region (hence shard) boundaries.
    pub(crate) fn enable_partition(&mut self, partition: &'a RegionPartition, owned: Vec<bool>) {
        assert!(
            self.plane.is_none(),
            "partitioned execution does not support the infrastructure fault plane"
        );
        assert_eq!(owned.len(), partition.len());
        let nets: Vec<Option<FlowNetwork>> = owned
            .iter()
            .map(|&o| o.then(|| FlowNetwork::new(&self.env.topology)))
            .collect();
        let nr = partition.len();
        let local_of_gid = self.gids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        self.part = Some(PartCtx {
            partition,
            owned,
            nets,
            pend: vec![None; nr],
            cont: vec![HashMap::new(); nr],
            outbox: Vec::new(),
            local_of_gid,
            finished_log: Vec::new(),
        });
    }

    /// Ask a streaming core to log `(finish, latency)` per retirement,
    /// drained with [`Self::take_completions`]. Feeds the health plane;
    /// off by default so plain runs never pay the pushes.
    pub(crate) fn log_completions(&mut self) {
        self.sink
            .as_mut()
            .expect("completion log requires streaming")
            .completions = Some(Vec::new());
    }

    /// Drain completions logged since the last call.
    pub(crate) fn take_completions(&mut self) -> Vec<(SimTime, u64)> {
        self.sink
            .as_mut()
            .and_then(|s| s.completions.as_mut())
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Requests injected/registered and not yet retired.
    pub(crate) fn live_requests(&self) -> usize {
        self.live
    }

    /// Inject one placed request into a streaming core, reusing a retired
    /// slot when one is free. `gid` is the request's global id (monotonic
    /// per offered request — never reused), `r.arrival` must be `>=` every
    /// event already pumped.
    pub(crate) fn inject_request(&mut self, gid: usize, r: StreamRequest) {
        assert!(self.sink.is_some(), "inject_request requires streaming");
        assert!(
            !r.dag.is_empty(),
            "open-loop request needs at least one task"
        );
        assert_eq!(
            r.placement.assignment.len(),
            r.dag.len(),
            "placement does not match dag '{}'",
            r.dag.name
        );
        let arrival = r.arrival;
        let n = r.dag.len();
        let plan = ReqPlan::build(&r.dag);
        let state = ReqState {
            missing: r
                .dag
                .tasks()
                .iter()
                .map(|t| plan.inputs_of(t.id).len() as u32)
                .collect(),
            unfinished: n,
            started: vec![false; n],
            slot_of: HashMap::new(),
            slots: Vec::new(),
            item_slots: vec![Vec::new(); plan.n_items],
            fanout: Vec::new(),
        };
        let assign = r.placement.assignment.clone();
        let entry = ReqEntry::Owned(Box::new(r));
        let slot = match self.free_slots.pop() {
            Some(s) => {
                debug_assert!(self.retired[s]);
                debug_assert_eq!(self.inflight[s], 0);
                debug_assert_eq!(self.pending_fin[s], 0);
                self.requests[s] = entry;
                self.gids[s] = gid;
                self.plans[s] = plan;
                self.states[s] = state;
                self.assign[s] = assign;
                self.attempt_no[s] = vec![0; n];
                self.finished[s] = vec![false; n];
                self.retired[s] = false;
                self.trace.request_arrival[s] = arrival;
                self.trace.request_finish[s] = SimTime::ZERO;
                s
            }
            None => {
                let s = self.requests.len();
                self.requests.push(entry);
                self.gids.push(gid);
                self.plans.push(plan);
                self.states.push(state);
                self.assign.push(assign);
                self.attempt_no.push(vec![0; n]);
                self.finished.push(vec![false; n]);
                self.retired.push(false);
                self.inflight.push(0);
                self.pending_fin.push(0);
                self.trace.request_arrival.push(arrival);
                self.trace.request_finish.push(SimTime::ZERO);
                s
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.live_gids.insert(gid);
        if let Some(part) = self.part.as_mut() {
            part.local_of_gid.insert(gid, slot);
        }
        self.queue.schedule_at(arrival, Ev::Arrival(slot));
    }

    /// Drain the retire-scan list, retiring every request whose
    /// preconditions all hold, then compact the record buffer if it grew
    /// past the watermark. Called by `pump` after each event so a stale
    /// `TaskFinished` can never observe a half-retired slot.
    fn process_retirements(&mut self) {
        while let Some(req) = self.retire_scan.pop() {
            self.try_retire(req);
        }
        if self.sink.is_some() {
            let len = self.trace.records.len();
            let sink = self.sink.as_mut().expect("checked");
            sink.peak_record_buf = sink.peak_record_buf.max(len);
            if len >= self.compact_at {
                self.compact_records();
            }
        }
    }

    /// Retire `req` if every precondition holds: all tasks finished, no
    /// delivery in flight toward any of its slots, and no scheduled
    /// `TaskFinished` still unpopped. Frees the per-request state in both
    /// modes (it is dead weight either way); in streaming mode the slot
    /// additionally returns to the free list for reuse and the request's
    /// latency folds into the sink.
    fn try_retire(&mut self, req: usize) {
        if self.retired[req]
            || self.states[req].unfinished != 0
            || self.inflight[req] != 0
            || self.pending_fin[req] != 0
        {
            return;
        }
        self.retired[req] = true;
        self.live -= 1;
        let n_tasks = req_ref(&self.requests, req).dag.len() as u32;
        for t in 0..n_tasks {
            self.attempts.remove(&(req, t));
        }
        let st = &mut self.states[req];
        st.missing = Vec::new();
        st.started = Vec::new();
        st.slot_of = HashMap::new();
        st.slots = Vec::new();
        st.item_slots = Vec::new();
        st.fanout = Vec::new();
        self.plans[req] = ReqPlan {
            in_off: Vec::new(),
            inputs: Vec::new(),
            n_items: 0,
        };
        self.assign[req] = Vec::new();
        self.attempt_no[req] = Vec::new();
        self.finished[req] = Vec::new();
        if let Some(part) = self.part.as_mut() {
            part.local_of_gid.remove(&self.gids[req]);
            if self.sink.is_some() {
                part.finished_log
                    .push((self.gids[req], self.trace.request_finish[req]));
            }
        }
        if let Some(sink) = self.sink.as_mut() {
            let gid = self.gids[req];
            let arrival = self.trace.request_arrival[req];
            let finish = self.trace.request_finish[req];
            // Partition mode defers the latency observation to the shard
            // driver: the true finish is the max across participating
            // cores, which no single core can see.
            if self.part.is_none() {
                let lat = finish.since(arrival).0;
                sink.latency.observe(lat);
                if let Some(log) = sink.completions.as_mut() {
                    log.push((finish, lat));
                }
            }
            sink.last_finish = sink.last_finish.max(finish);
            self.live_gids.remove(&gid);
            self.requests[req] = ReqEntry::Free;
            self.free_slots.push(req);
        }
    }

    /// Fold the task records of retired requests into the sink and keep
    /// only live ones, remapping the record indices held by `running`.
    /// The next compaction triggers at twice the surviving length, so the
    /// buffer stays proportional to the live-request working set.
    fn compact_records(&mut self) {
        let sink = self.sink.as_mut().expect("compaction is streaming-only");
        let old = std::mem::take(&mut self.trace.records);
        sink.peak_record_buf = sink.peak_record_buf.max(old.len());
        let mut new_of_old: Vec<u32> = vec![u32::MAX; old.len()];
        let mut kept: Vec<TaskRecord> = Vec::new();
        for (i, rec) in old.into_iter().enumerate() {
            if self.live_gids.contains(&rec.request) {
                new_of_old[i] = kept.len() as u32;
                kept.push(rec);
            } else {
                sink.records_folded += 1;
                sink.task_duration.observe(rec.duration().0);
                sink.tasks_by_device[rec.device.0 as usize] += 1;
            }
        }
        self.trace.records = kept;
        for dev in &mut self.running {
            for (_, _, rec) in dev.iter_mut() {
                let m = new_of_old[*rec];
                debug_assert!(m != u32::MAX, "running attempt's record was folded");
                *rec = m as usize;
            }
        }
        self.compact_at = (2 * self.trace.records.len()).max(4096);
    }

    /// Tear a fully drained *streaming* core down into its bounded
    /// aggregates. The streaming analogue of [`Self::finish`]: asserts the
    /// conservation invariant (every injected request retired) and folds
    /// any remaining records.
    pub(crate) fn finish_open(mut self) -> OpenCoreParts {
        for st in &self.states {
            assert_eq!(st.unfinished, 0, "deadlock: tasks never became ready");
        }
        assert_eq!(self.live, 0, "open-loop run left live requests behind");
        debug_assert!(self.egress_log.is_empty());
        self.assert_part_drained();
        self.compact_records();
        debug_assert!(self.trace.records.is_empty());
        let sink = self.sink.take().expect("finish_open requires streaming");
        let end_time = sink.last_finish;
        let snap = self
            .collect
            .then(|| harvest_core_metrics(&self.rcache, &self.queue, &self.network, &self.obs));
        OpenCoreParts {
            latency: sink.latency,
            task_duration: sink.task_duration,
            tasks_by_device: sink.tasks_by_device,
            tasks_executed: sink.records_folded,
            peak_live: self.peak_live,
            peak_record_buf: sink.peak_record_buf,
            end_time,
            bytes_moved: self.trace.bytes_moved,
            transfers: self.trace.transfers,
            failed_attempts: self.trace.failed_attempts,
            replacements: self.trace.replacements,
            killed_attempts: self.trace.killed_attempts,
            device_crashes: self.trace.device_crashes,
            link_failures: self.trace.link_failures,
            lost_dev: self.lost_dev,
            energy: self.energy,
            cost: self.cost,
            snap,
        }
    }

    /// Partition mode teardown check: no transfer may still be streaming,
    /// staged for handoff, or awaiting a completion event.
    fn assert_part_drained(&self) {
        if let Some(part) = &self.part {
            debug_assert!(part.outbox.is_empty(), "undelivered cross-core transfers");
            debug_assert!(
                part.cont.iter().all(|c| c.is_empty()),
                "in-flight transfers at teardown"
            );
            debug_assert!(part.pend.iter().all(|p| p.is_none()));
        }
    }

    /// Tear the core down into mergeable parts. Asserts the conservation
    /// invariant (no task left unfinished) and applies the egress log to
    /// the cost meter.
    pub(crate) fn finish(mut self) -> CoreParts {
        debug_assert!(self.sink.is_none(), "streaming cores use finish_open");
        for st in &self.states {
            assert_eq!(st.unfinished, 0, "deadlock: tasks never became ready");
        }
        self.assert_part_drained();
        let mut bytes_moved = 0u64;
        for &(dev, bytes) in &self.egress_log {
            bytes_moved += bytes;
            if let Some(dev) = dev {
                self.cost.record_egress(&self.env.fleet, dev, bytes);
            }
        }
        let snap = self
            .collect
            .then(|| harvest_core_metrics(&self.rcache, &self.queue, &self.network, &self.obs));
        CoreParts {
            request_finish: self
                .gids
                .iter()
                .copied()
                .zip(self.trace.request_finish.iter().copied())
                .collect(),
            bytes_moved,
            transfers: self.egress_log.len() as u64,
            failed_attempts: self.trace.failed_attempts,
            device_crashes: self.trace.device_crashes,
            link_failures: self.trace.link_failures,
            replacements: self.trace.replacements,
            killed_attempts: self.trace.killed_attempts,
            records: self.trace.records,
            lost_dev: self.lost_dev,
            energy: self.energy,
            cost: self.cost,
            marks: self.obs.marks,
            snap,
        }
    }
}

/// Static shard geometry for the Perfetto synthesizer: which shard owns
/// each device and region. Built by the sharded executors (trace-on runs
/// only) so the exported timeline can put each shard on its own process
/// track and stitch cross-shard hops with flow arrows; `None` keeps the
/// single-process layout of the unsharded executor.
pub(crate) struct ShardLayout {
    /// Device id -> owning shard.
    pub(crate) shard_of_device: Vec<u32>,
    /// Region index -> owning shard.
    pub(crate) shard_of_region: Vec<u32>,
}

impl ShardLayout {
    /// Derive the device ownership map from region ownership.
    pub(crate) fn new(
        env: &Env,
        partition: &RegionPartition,
        shard_of_region: Vec<u32>,
    ) -> ShardLayout {
        let shard_of_device = (0..env.fleet.len())
            .map(|d| {
                let node = env.node_of(DeviceId(d as u32));
                shard_of_region[partition.region_of(node)]
            })
            .collect();
        ShardLayout {
            shard_of_device,
            shard_of_region,
        }
    }
}

/// Everything one [`ExecCore`] produced, ready to be merged into a
/// [`SimOutcome`] by [`assemble`].
pub(crate) struct CoreParts {
    /// Task records with *global* request indices (not yet canonical).
    records: Vec<TaskRecord>,
    /// `(global request index, finish time)` per request the core ran.
    request_finish: Vec<(usize, SimTime)>,
    bytes_moved: u64,
    transfers: u64,
    failed_attempts: u64,
    device_crashes: u64,
    link_failures: u64,
    replacements: u64,
    killed_attempts: u64,
    /// Execution seconds destroyed by crashes, per device id.
    lost_dev: Vec<f64>,
    energy: EnergyMeter,
    cost: CostMeter,
    marks: Vec<(SimTime, ObsMark)>,
    /// Component counters (route cache, event queue, flow engine,
    /// executor tallies) harvested at core finish; `None` without an
    /// ambient sink.
    snap: Option<MetricsSnapshot>,
}

/// Bounded aggregates of one streaming [`ExecCore`] run, produced by
/// [`ExecCore::finish_open`]. Unlike [`CoreParts`] there is no per-request
/// or per-task payload here — everything is a histogram, counter, or
/// per-device vector, so its size is independent of how many requests the
/// run processed.
pub(crate) struct OpenCoreParts {
    /// Request latency (finish - arrival) of every completed request.
    pub(crate) latency: Histogram,
    /// Duration of every executed task attempt.
    pub(crate) task_duration: Histogram,
    /// Executed attempts per device id.
    pub(crate) tasks_by_device: Vec<u64>,
    /// Total executed task attempts.
    pub(crate) tasks_executed: u64,
    /// High-water mark of simultaneously live requests.
    pub(crate) peak_live: usize,
    /// High-water mark of the compacting record buffer.
    pub(crate) peak_record_buf: usize,
    /// Latest request finish — the end of the run.
    pub(crate) end_time: SimTime,
    pub(crate) bytes_moved: u64,
    pub(crate) transfers: u64,
    pub(crate) failed_attempts: u64,
    pub(crate) replacements: u64,
    pub(crate) killed_attempts: u64,
    pub(crate) device_crashes: u64,
    pub(crate) link_failures: u64,
    /// Execution seconds destroyed by crashes, per device id.
    pub(crate) lost_dev: Vec<f64>,
    /// Mergeable meters: the run-level joules/dollars are computed by the
    /// caller once the *global* makespan is known (a sharded run's end
    /// time is the max across cores, which no single core can see).
    pub(crate) energy: EnergyMeter,
    pub(crate) cost: CostMeter,
    /// Component counters harvested at finish; `None` without an ambient
    /// sink.
    pub(crate) snap: Option<MetricsSnapshot>,
}

/// Merge core parts into the final [`SimOutcome`].
///
/// The single-queue executor is `assemble` over exactly one part, so the
/// one-shard arm of the sharded executor is bit-identical to it *by
/// construction* — both run the same core and the same finalization.
/// Merging is exact because shards never share state: records concatenate
/// and canonicalize, u64 counters add, and the per-device f64 vectors
/// (lost work, energy, cost) add elementwise where at most one operand is
/// nonzero per index.
pub(crate) fn assemble(
    env: &Env,
    requests: &[StreamRequest],
    plane: Option<&FaultPlane>,
    layout: Option<&ShardLayout>,
    parts: Vec<CoreParts>,
) -> SimOutcome {
    assert!(!parts.is_empty(), "assemble needs at least one core");
    let tele = continuum_obs::ambient();
    let mut trace = ExecutionTrace {
        request_arrival: requests.iter().map(|r| r.arrival).collect(),
        request_finish: vec![SimTime::ZERO; requests.len()],
        ..Default::default()
    };
    // Every core processes the full fault schedule, so the infrastructure
    // event counts must agree; take them once instead of summing.
    trace.device_crashes = parts[0].device_crashes;
    trace.link_failures = parts[0].link_failures;
    let mut lost_dev = vec![0.0; env.fleet.len()];
    let mut energy = EnergyMeter::new(&env.fleet);
    let mut cost = CostMeter::new(&env.fleet);
    let mut marks: Vec<(SimTime, ObsMark)> = Vec::new();
    let mut snaps: Vec<MetricsSnapshot> = Vec::new();
    for p in parts {
        assert_eq!(
            p.device_crashes, trace.device_crashes,
            "cores disagree on the fault schedule"
        );
        assert_eq!(
            p.link_failures, trace.link_failures,
            "cores disagree on the fault schedule"
        );
        trace.records.extend(p.records);
        for (gid, fin) in p.request_finish {
            // Max-merge: under partitioned execution several cores run
            // disjoint pieces of one request, and the request finishes
            // when its *last* piece does. Confined cores report each gid
            // exactly once, so the max is the plain assignment there.
            trace.request_finish[gid] = trace.request_finish[gid].max(fin);
        }
        trace.bytes_moved += p.bytes_moved;
        trace.transfers += p.transfers;
        trace.failed_attempts += p.failed_attempts;
        trace.replacements += p.replacements;
        trace.killed_attempts += p.killed_attempts;
        for (d, v) in p.lost_dev.iter().enumerate() {
            lost_dev[d] += v;
        }
        energy.merge(&p.energy);
        cost.merge(&p.cost);
        marks.extend(p.marks);
        if let Some(s) = p.snap {
            snaps.push(s);
        }
    }
    // Summed in device-id order (not crash-event order) so the total does
    // not depend on how events interleaved across cores.
    trace.lost_work_s = lost_dev.iter().sum();
    trace.canonicalize();
    let makespan = trace.makespan();
    let metrics = Metrics {
        makespan_s: makespan.as_secs_f64(),
        energy_j: energy.used_devices_joules(&env.fleet, makespan),
        cost_usd: cost.total_usd(),
        bytes_moved: trace.bytes_moved,
    };
    // Harvest telemetry only now, outside the event loops: run-level
    // counters from the merged trace, plus each core's component
    // snapshot, folded into the ambient sink and attached to the outcome.
    let telemetry = tele.map(|t| {
        let mut snap = harvest_run_metrics(&trace, &metrics);
        for s in &snaps {
            snap.merge(s);
        }
        t.metrics.absorb(&snap);
        if t.trace_enabled() {
            synthesize_trace(&t, env, plane, layout, &trace, &marks);
        }
        Box::new(snap)
    });
    SimOutcome {
        trace,
        metrics,
        telemetry,
    }
}

/// Fold one finished run's merged totals into a fresh
/// [`MetricsSnapshot`]: the run-level half of the per-run record embedded
/// in [`SimOutcome::telemetry`] (the per-core component half comes from
/// [`harvest_core_metrics`]).
fn harvest_run_metrics(trace: &ExecutionTrace, metrics: &Metrics) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    reg.inc("executor.runs", 1);
    reg.record("executor.replacements", trace.replacements);
    reg.record("executor.device_crashes", trace.device_crashes);
    reg.record("executor.link_failures", trace.link_failures);
    reg.record("executor.killed_attempts", trace.killed_attempts);
    reg.record("executor.failed_attempts", trace.failed_attempts);
    reg.inc("executor.transfers", trace.transfers);
    reg.inc("executor.bytes_moved", trace.bytes_moved);
    reg.set_gauge("executor.makespan_s", metrics.makespan_s);
    reg.set_gauge("executor.lost_work_s", trace.lost_work_s);
    for rec in &trace.records {
        reg.observe_ns("executor.task_duration", rec.finish.since(rec.start).0);
        reg.inc_labeled("device.tasks", rec.device.0, 1);
    }
    for lat in trace.latencies_s() {
        reg.observe_ns(
            "executor.request_latency",
            SimDuration::from_secs_f64(lat).0,
        );
    }
    reg.snapshot()
}

/// Fold one core's component counters (route cache, event queue, flow
/// engine, executor tallies) into a fresh [`MetricsSnapshot`]. Counters
/// and histograms from different cores merge additively; the flow
/// engine's mean-batch gauge is last-write-wins across cores, which is
/// acceptable for a diagnostic.
fn harvest_core_metrics(
    rcache: &RouteCache,
    queue: &EventQueue<Ev>,
    network: &FlowNetwork,
    obs: &ExecObs,
) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    rcache.publish_metrics(&reg, "route_cache");
    queue.publish_metrics(&reg, "event_queue");
    network.publish_metrics(&reg, "flow_engine");
    reg.record("executor.stalls", obs.stalls);
    reg.inc("executor.publishes", obs.publishes);
    reg.inc("executor.publish_fanout", obs.publish_fanout);
    reg.record("executor.parked", obs.parked);
    reg.snapshot()
}

/// Synthesize the run's Perfetto timeline into the sink's tracer, from
/// data the run already produced — zero cost inside the event loop:
///
/// - one `B`/`E` span per request on its own thread track (pairs nest
///   trivially: exactly one span per track);
/// - one `X` slice per task attempt on its device's track — on the
///   owning *shard's* process track when a [`ShardLayout`] is given, so
///   a sharded run opens in Perfetto as one process per shard;
/// - `s`/`f` flow arrows stitching each cross-shard envelope hop from
///   the sending shard's transfer track to the receiving shard's, with
///   one deterministic id per `(request, item, hop)`;
/// - instants for fault-plane events (tid 0) and for the stall /
///   re-placement / park marks recorded in-loop (request tracks);
/// - `M` metadata naming every process and thread track.
fn synthesize_trace(
    tele: &Telemetry,
    env: &Env,
    plane: Option<&FaultPlane>,
    layout: Option<&ShardLayout>,
    trace: &ExecutionTrace,
    marks: &[(SimTime, ObsMark)],
) {
    let pid = tele.pid();
    let tr = &tele.tracer;
    const REQ_TID_BASE: u32 = 100;
    const DEV_TID_BASE: u32 = 10_000;
    const XFER_TID: u32 = 1;
    // Shard s renders as its own process so its device and transfer
    // tracks group together; the base pid keeps the run-level tracks
    // (requests, faults). Cell pids are small (one per experiment cell),
    // so the multiplication cannot collide across cells.
    let shard_pid = |s: u32| pid * 1_000 + 1 + s;
    let mut named_shards: Vec<bool> = Vec::new();
    let mut name_shard = |tr: &Tracer, s: u32| {
        let si = s as usize;
        if si >= named_shards.len() {
            named_shards.resize(si + 1, false);
        }
        if !named_shards[si] {
            named_shards[si] = true;
            tr.process_name(shard_pid(s), format!("shard {s}"));
            tr.thread_name(shard_pid(s), XFER_TID, "xfer");
        }
    };
    tr.process_name(pid, "continuum executor");
    tr.thread_name(pid, 0, "faults");
    for (i, (&arr, &fin)) in trace
        .request_arrival
        .iter()
        .zip(&trace.request_finish)
        .enumerate()
    {
        let tid = REQ_TID_BASE + i as u32;
        tr.thread_name(pid, tid, format!("request {i}"));
        tr.span_begin(format!("request {i}"), "request", arr.0, pid, tid);
        tr.span_end(format!("request {i}"), "request", fin.0, pid, tid);
    }
    let mut named_devs = vec![false; env.fleet.len()];
    for rec in &trace.records {
        let di = rec.device.0 as usize;
        let tid = DEV_TID_BASE + rec.device.0;
        let dev_pid = match layout {
            Some(l) => {
                let s = l.shard_of_device[di];
                name_shard(tr, s);
                shard_pid(s)
            }
            None => pid,
        };
        if !named_devs[di] {
            named_devs[di] = true;
            tr.thread_name(dev_pid, tid, format!("dev {di}"));
        }
        tr.complete(
            format!("r{}:t{}", rec.request, rec.task.0),
            "task",
            rec.start.0,
            rec.finish.since(rec.start).0,
            dev_pid,
            tid,
            vec![("cores", serde::Value::U64(u64::from(rec.cores)))],
        );
    }
    if let Some(p) = plane {
        for fe in p.schedule.events() {
            let name = match fe.kind {
                FaultKind::DeviceCrash => format!("crash dev {}", fe.target),
                FaultKind::DeviceRecover => format!("recover dev {}", fe.target),
                FaultKind::LinkFail => format!("fail link {}", fe.target),
                FaultKind::LinkRestore => format!("restore link {}", fe.target),
                FaultKind::EndpointCrash | FaultKind::EndpointRecover => continue,
            };
            tr.instant(name, "fault", fe.at.0, pid, 0);
        }
    }
    for (at, mark) in marks {
        let (name, req) = match mark {
            ObsMark::Stall { req } => (format!("stall r{req}"), *req),
            ObsMark::Replace { req, task, dev } => {
                (format!("replace r{req}:t{} -> dev {}", task.0, dev.0), *req)
            }
            ObsMark::Park { req, task } => (format!("park r{req}:t{}", task.0), *req),
            ObsMark::FlowOut {
                gid,
                item,
                hop,
                from_region,
                to_region,
            } => {
                let Some(l) = layout else { continue };
                let s = l.shard_of_region[*from_region as usize];
                name_shard(tr, s);
                name_shard(tr, l.shard_of_region[*to_region as usize]);
                tr.flow_start(
                    format!("r{gid}:d{} hop {hop}", item.0),
                    "xfer",
                    at.0,
                    shard_pid(s),
                    XFER_TID,
                    flow_hop_id(*gid, *item, *hop),
                );
                // Anchor instants give the arrow endpoints a slice to
                // attach to on the otherwise-empty transfer tracks.
                tr.instant(
                    format!("send r{gid}:d{}", item.0),
                    "xfer",
                    at.0,
                    shard_pid(s),
                    XFER_TID,
                );
                continue;
            }
            ObsMark::FlowIn {
                gid,
                item,
                hop,
                at_region,
            } => {
                let Some(l) = layout else { continue };
                let s = l.shard_of_region[*at_region as usize];
                name_shard(tr, s);
                tr.flow_end(
                    format!("r{gid}:d{} hop {hop}", item.0),
                    "xfer",
                    at.0,
                    shard_pid(s),
                    XFER_TID,
                    flow_hop_id(*gid, *item, *hop),
                );
                tr.instant(
                    format!("recv r{gid}:d{}", item.0),
                    "xfer",
                    at.0,
                    shard_pid(s),
                    XFER_TID,
                );
                continue;
            }
        };
        tr.instant(name, "chaos", at.0, pid, REQ_TID_BASE + req as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::{standard_fleet, DeviceClass, Fleet};
    use continuum_net::{continuum, ContinuumSpec, Tier, Topology};
    use continuum_placement::{evaluate, HeftPlacer, Placer};
    use continuum_sim::SimDuration;

    /// Two-node world: edge (slow) and cloud (fast) joined by one link.
    fn two_node(bandwidth: f64) -> (Env, NodeId, NodeId) {
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(10), bandwidth);
        let mut fleet = Fleet::new();
        fleet.add_class(e, DeviceClass::EdgeGateway);
        fleet.add_class(c, DeviceClass::CloudVm);
        (Env::new(topo, fleet), e, c)
    }

    fn local_task_dag(node: NodeId, work: f64) -> Dag {
        let mut g = Dag::new("one");
        let input = g.add_input("in", 1000, node);
        let out = g.add_item("out", 10);
        g.add_task("t", work, vec![input], vec![out]);
        g
    }

    #[test]
    fn single_local_task_time_matches_spec() {
        let (env, e, _) = two_node(1e9);
        let dag = local_task_dag(e, 1.2e10);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0)],
        };
        let out = simulate(&env, &dag, &placement);
        let spec = &env.fleet.device(continuum_model::DeviceId(0)).spec;
        let expected = spec.compute_time(1.2e10).as_secs_f64();
        assert!((out.metrics.makespan_s - expected).abs() < 1e-6);
        assert_eq!(out.trace.bytes_moved, 0);
    }

    #[test]
    fn remote_task_pays_latency_and_bandwidth() {
        let (env, e, _c) = two_node(1e6);
        let dag = local_task_dag(e, 6e11);
        // Run on the cloud device (index 1): the 1000-byte input must move.
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1)],
        };
        let out = simulate(&env, &dag, &placement);
        let spec = &env.fleet.device(continuum_model::DeviceId(1)).spec;
        let expected = 0.010 + 1000.0 / 1e6 + spec.compute_time(6e11).as_secs_f64();
        assert!(
            (out.metrics.makespan_s - expected).abs() < 1e-3,
            "got {} want {}",
            out.metrics.makespan_s,
            expected
        );
        assert_eq!(out.trace.bytes_moved, 1000);
        assert_eq!(out.trace.transfers, 1);
    }

    #[test]
    fn queueing_serializes_beyond_core_count() {
        let (env, e, _) = two_node(1e9);
        // 9 independent 1-core tasks on the 4-core edge gateway.
        let mut g = Dag::new("fanout");
        let input = g.add_input("in", 10, e);
        for i in 0..9 {
            let out = g.add_item(format!("o{i}"), 1);
            g.add_task(format!("t{i}"), 3e9, vec![input], vec![out]);
        }
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0); 9],
        };
        let out = simulate(&env, &g, &placement);
        let one = env
            .fleet
            .device(continuum_model::DeviceId(0))
            .spec
            .compute_time(3e9);
        // 9 tasks on 4 cores -> 3 waves.
        let expected = one.as_secs_f64() * 3.0;
        assert!(
            (out.metrics.makespan_s - expected).abs() < 1e-6,
            "got {} want {}",
            out.metrics.makespan_s,
            expected
        );
    }

    #[test]
    fn concurrent_transfers_share_the_link() {
        let (env, e, _c) = two_node(1e6);
        // Two tasks in the cloud, each pulling a distinct 1 MB input from
        // the edge: fair sharing doubles the serialization time.
        let mut g = Dag::new("contend");
        let i1 = g.add_input("i1", 1_000_000, e);
        let i2 = g.add_input("i2", 1_000_000, e);
        let o1 = g.add_item("o1", 1);
        let o2 = g.add_item("o2", 1);
        g.add_task("t1", 1e6, vec![i1], vec![o1]);
        g.add_task("t2", 1e6, vec![i2], vec![o2]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1), continuum_model::DeviceId(1)],
        };
        let out = simulate(&env, &g, &placement);
        // Both transfers share 1e6 B/s: each effectively 0.5e6 B/s -> 2s,
        // plus 10ms latency, plus ~1.7ms compute.
        assert!(
            out.metrics.makespan_s > 2.0,
            "contention not modeled: {}",
            out.metrics.makespan_s
        );
        assert!(out.metrics.makespan_s < 2.1);
    }

    #[test]
    fn same_item_to_same_node_transfers_once() {
        let (env, e, _c) = two_node(1e6);
        let mut g = Dag::new("dedupe");
        let input = g.add_input("in", 1_000_000, e);
        let o1 = g.add_item("o1", 1);
        let o2 = g.add_item("o2", 1);
        g.add_task("t1", 1e6, vec![input], vec![o1]);
        g.add_task("t2", 1e6, vec![input], vec![o2]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1), continuum_model::DeviceId(1)],
        };
        let out = simulate(&env, &g, &placement);
        assert_eq!(out.trace.transfers, 1);
        assert_eq!(out.trace.bytes_moved, 1_000_000);
    }

    #[test]
    fn duplicate_inputs_counted_once() {
        // A task listing the same input twice must need it only once (the
        // ReqPlan dedupes); regression for the CSR input-plan build.
        let (env, e, _c) = two_node(1e6);
        let mut g = Dag::new("dup");
        let input = g.add_input("in", 1_000, e);
        let out = g.add_item("out", 1);
        g.add_task("t", 1e6, vec![input, input, input], vec![out]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1)],
        };
        let res = simulate(&env, &g, &placement);
        assert_eq!(res.trace.transfers, 1);
        assert_eq!(res.trace.records.len(), 1);
    }

    #[test]
    fn dependencies_respected_on_real_workflow() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = continuum_sim::Rng::new(19);
        let dag = continuum_workflow::layered_random(
            &mut rng,
            &continuum_workflow::LayeredSpec {
                tasks: 80,
                ..Default::default()
            },
        );
        let placement = HeftPlacer::default().place(&env, &dag);
        let out = simulate(&env, &dag, &placement);
        assert!(out.trace.respects_dependencies(&[&dag]));
        assert_eq!(out.trace.records.len(), dag.len());
    }

    #[test]
    fn simulation_close_to_estimate_without_contention() {
        // A chain has no concurrent transfers or queueing, so the simulated
        // makespan must match the analytic estimate almost exactly.
        let (env, e, _) = two_node(1e8);
        let mut g = Dag::new("chain");
        let mut prev = g.add_input("in", 1 << 20, e);
        for i in 0..5 {
            let out = g.add_item(format!("d{i}"), 1 << 20);
            g.add_task(format!("t{i}"), 1e10, vec![prev], vec![out]);
            prev = out;
        }
        let placement = HeftPlacer::default().place(&env, &g);
        let (sched, est) = evaluate(&env, &g, &placement);
        let sim = simulate(&env, &g, &placement);
        assert!(sched.respects_dependencies(&g));
        let rel = (sim.metrics.makespan_s - est.makespan_s).abs() / est.makespan_s;
        assert!(
            rel < 0.01,
            "sim {} vs est {}",
            sim.metrics.makespan_s,
            est.makespan_s
        );
    }

    #[test]
    fn stream_requests_tracked_independently() {
        let (env, e, _) = two_node(1e9);
        let mk = |arr: u64| StreamRequest {
            arrival: SimTime::from_secs(arr),
            dag: local_task_dag(e, 1.2e10),
            placement: Placement {
                assignment: vec![continuum_model::DeviceId(0)],
            },
        };
        let out = simulate_stream(&env, &[mk(0), mk(10)]);
        let lats = out.trace.latencies_s();
        assert_eq!(lats.len(), 2);
        // Both requests see an idle device: equal latency.
        assert!((lats[0] - lats[1]).abs() < 1e-9);
        assert!(out.trace.request_finish[1] > SimTime::from_secs(10));
    }

    #[test]
    fn egress_billed_to_producing_device() {
        // Two devices at the edge node with different egress rates: the
        // producer's bytes must be billed to the device that ran the
        // producer, not to whichever device happens to be first at the
        // node (the seed's `at_node(src).first()` bug).
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(1), 1e9);
        let mut fleet = Fleet::new();
        let free_spec = continuum_model::DeviceSpec {
            egress_usd_per_gb: 0.0,
            usd_per_hour: 0.0,
            ..fleet_spec(DeviceClass::EdgeGateway)
        };
        let paid_spec = continuum_model::DeviceSpec {
            egress_usd_per_gb: 5.0,
            usd_per_hour: 0.0,
            ..fleet_spec(DeviceClass::EdgeGateway)
        };
        let _free = fleet.add(e, free_spec); // device 0, first at the node
        let paid = fleet.add(e, paid_spec); // device 1: runs the producer
        let sink_spec = continuum_model::DeviceSpec {
            usd_per_hour: 0.0,
            egress_usd_per_gb: 0.0,
            ..fleet_spec(DeviceClass::CloudVm)
        };
        let sink = fleet.add(c, sink_spec);
        let env = Env::new(topo, fleet);

        let mut g = Dag::new("egress");
        // External input homed at the edge so the producer runs locally.
        let input = g.add_input("in", 1, e);
        let mid = g.add_item("mid", 2_000_000_000); // 2 GB crosses the link
        let out = g.add_item("out", 1);
        g.add_task("produce", 1e6, vec![input], vec![mid]);
        g.add_task("consume", 1e6, vec![mid], vec![out]);
        let placement = Placement {
            assignment: vec![paid, sink],
        };
        let res = simulate(&env, &g, &placement);
        // 2 GB at $5/GB from the *paid* device: $10. Under the seed's
        // first-device attribution this was $0.
        assert!(
            (res.metrics.cost_usd - 10.0).abs() < 1e-9,
            "egress misattributed: cost {}",
            res.metrics.cost_usd
        );
    }

    fn fleet_spec(class: DeviceClass) -> continuum_model::DeviceSpec {
        // A throwaway fleet to borrow the catalog spec for a class.
        let mut topo = Topology::new();
        let n = topo.add_node("x", Tier::Edge);
        let mut fleet = Fleet::new();
        let d = fleet.add_class(n, class);
        fleet.device(d).spec.clone()
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use continuum_model::{standard_fleet, DeviceClass, Fleet};
    use continuum_net::{Tier, Topology};
    use continuum_placement::{HeftPlacer, Placer};
    use continuum_sim::FaultSchedule;

    fn world() -> (Env, Dag, Placement) {
        let built = continuum_net::continuum(&continuum_net::ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = continuum_sim::Rng::new(7);
        let dag = continuum_workflow::layered_random(
            &mut rng,
            &continuum_workflow::LayeredSpec {
                tasks: 60,
                ..Default::default()
            },
        );
        let placement = HeftPlacer::default().place(&env, &dag);
        (env, dag, placement)
    }

    fn as_reqs(dag: &Dag, placement: &Placement) -> Vec<StreamRequest> {
        vec![StreamRequest {
            arrival: SimTime::ZERO,
            dag: dag.clone(),
            placement: placement.clone(),
        }]
    }

    #[test]
    fn empty_fault_plane_is_bit_identical() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        let plane = FaultPlane {
            schedule: FaultSchedule::new(),
            detection: SimDuration::from_millis(250),
        };
        let chaos = simulate_stream_chaos(&env, &as_reqs(&dag, &placement), None, Some(&plane));
        // Exact equality, not approximate: the zero-fault chaos path must
        // take the same decisions in the same order.
        assert_eq!(clean.metrics.makespan_s, chaos.metrics.makespan_s);
        assert_eq!(clean.metrics.energy_j, chaos.metrics.energy_j);
        assert_eq!(clean.metrics.cost_usd, chaos.metrics.cost_usd);
        assert_eq!(clean.trace.bytes_moved, chaos.trace.bytes_moved);
        assert_eq!(clean.trace.records.len(), chaos.trace.records.len());
        assert_eq!(clean.trace.request_finish, chaos.trace.request_finish);
        assert_eq!(chaos.trace.device_crashes, 0);
        assert_eq!(chaos.trace.replacements, 0);
        assert_eq!(chaos.trace.lost_work_s, 0.0);
    }

    #[test]
    fn device_crash_replaces_orphans_on_survivors() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        // Crash the device running the longest task, mid-execution, and
        // keep it down past the clean makespan so nothing restarts there.
        let longest = clean
            .trace
            .records
            .iter()
            .max_by_key(|r| (r.duration(), r.task.0))
            .expect("non-empty trace");
        let crash_at = SimTime::from_secs_f64(
            (longest.start.as_secs_f64() + longest.finish.as_secs_f64()) / 2.0,
        );
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::DeviceCrash,
            longest.device.0,
            crash_at,
            SimDuration::from_secs_f64(clean.metrics.makespan_s * 10.0 + 60.0),
        );
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(250),
        };
        let chaos = simulate_stream_chaos(&env, &as_reqs(&dag, &placement), None, Some(&plane));
        // Everything still completes (the final conservation assert inside
        // the executor also guarantees this), work moved, work was lost.
        assert_eq!(chaos.trace.device_crashes, 1);
        assert!(
            chaos.trace.killed_attempts >= 1,
            "mid-task crash kills work"
        );
        assert!(chaos.trace.lost_work_s > 0.0);
        assert!(
            chaos.trace.replacements >= 1,
            "orphans must be re-placed, not retried in place"
        );
        assert!(
            chaos.metrics.makespan_s >= clean.metrics.makespan_s,
            "crash cannot speed the run up: {} < {}",
            chaos.metrics.makespan_s,
            clean.metrics.makespan_s
        );
        // The killed attempt was re-run somewhere that is not the dead
        // device: its final record must name a different device.
        let final_dev = chaos
            .trace
            .records
            .iter()
            .rfind(|r| r.task == longest.task)
            .expect("task re-ran")
            .device;
        assert_ne!(
            final_dev, longest.device,
            "task restarted on the dead device"
        );
    }

    #[test]
    fn link_failure_preserves_bytes_and_stalls_until_restore() {
        // Edge->cloud world with one link: failing it mid-transfer strands
        // the remainder until the restore.
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(10), 1e6);
        let mut fleet = Fleet::new();
        fleet.add_class(e, DeviceClass::EdgeGateway);
        fleet.add_class(c, DeviceClass::CloudVm);
        let env = Env::new(topo, fleet);
        let mut dag = Dag::new("xfer");
        let input = dag.add_input("in", 1_000_000, e);
        let out = dag.add_item("out", 1);
        dag.add_task("t", 1e6, vec![input], vec![out]);
        let placement = Placement {
            assignment: vec![DeviceId(1)],
        };
        let reqs = as_reqs(&dag, &placement);
        // The 1 MB transfer runs 0.5..~1.5s virtual; kill the only link at
        // t=0.5s and bring it back at t=20s.
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::LinkFail,
            0,
            SimTime::from_millis(500),
            SimDuration::from_secs_f64(19.5),
        );
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(250),
        };
        let chaos = simulate_stream_chaos(&env, &reqs, None, Some(&plane));
        assert_eq!(chaos.trace.link_failures, 1);
        // The transfer resumed (partial bytes kept, not restarted), so the
        // egress accounting still shows exactly one 1 MB transfer.
        assert_eq!(chaos.trace.bytes_moved, 1_000_000);
        assert_eq!(chaos.trace.transfers, 1);
        // And the makespan rode out the outage.
        assert!(
            chaos.metrics.makespan_s > 20.0,
            "makespan {} should include the outage",
            chaos.metrics.makespan_s
        );
        let clean = simulate(&env, &dag, &placement);
        assert!(chaos.metrics.makespan_s > clean.metrics.makespan_s);
    }

    #[test]
    fn no_live_device_parks_until_recovery() {
        // One device total: a crash leaves the placer nothing; the task
        // parks and re-places onto the same device once it recovers.
        let mut topo = Topology::new();
        let n = topo.add_node("only", Tier::Edge);
        let mut fleet = Fleet::new();
        fleet.add_class(n, DeviceClass::EdgeGateway);
        let env = Env::new(topo, fleet);
        let mut dag = Dag::new("one");
        let input = dag.add_input("in", 1, n);
        let out = dag.add_item("out", 1);
        // ~2.5 s on an EdgeGateway core.
        dag.add_task("t", 2e10, vec![input], vec![out]);
        let placement = Placement {
            assignment: vec![DeviceId(0)],
        };
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::DeviceCrash,
            0,
            SimTime::from_millis(100),
            SimDuration::from_secs(30),
        );
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(50),
        };
        let chaos = simulate_stream_chaos(&env, &as_reqs(&dag, &placement), None, Some(&plane));
        assert_eq!(chaos.trace.killed_attempts, 1);
        assert!(
            chaos.metrics.makespan_s > 30.0,
            "makespan {} should wait out the outage",
            chaos.metrics.makespan_s
        );
    }

    #[test]
    fn chaos_is_deterministic() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        let mut schedule = FaultSchedule::new();
        let dev = clean.trace.records[0].device.0;
        schedule.crash_and_recover(
            FaultKind::DeviceCrash,
            dev,
            SimTime::from_secs_f64(clean.metrics.makespan_s * 0.3),
            SimDuration::from_secs(5),
        );
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(250),
        };
        let a = simulate_stream_chaos(&env, &as_reqs(&dag, &placement), None, Some(&plane));
        let b = simulate_stream_chaos(&env, &as_reqs(&dag, &placement), None, Some(&plane));
        assert_eq!(a, b, "chaos execution must be fully deterministic");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use continuum_model::{standard_fleet, DeviceClass, Fleet};
    use continuum_net::{Tier, Topology};
    use continuum_placement::{HeftPlacer, Placer};
    use continuum_sim::SimDuration;

    fn world() -> (Env, Dag, Placement) {
        let built = continuum_net::continuum(&continuum_net::ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = continuum_sim::Rng::new(99);
        let dag = continuum_workflow::layered_random(
            &mut rng,
            &continuum_workflow::LayeredSpec {
                tasks: 50,
                ..Default::default()
            },
        );
        let placement = HeftPlacer::default().place(&env, &dag);
        (env, dag, placement)
    }

    fn run_with(env: &Env, dag: &Dag, placement: &Placement, prob: f64) -> SimOutcome {
        let reqs = [StreamRequest {
            arrival: SimTime::ZERO,
            dag: dag.clone(),
            placement: placement.clone(),
        }];
        let faults = FaultSpec {
            fail_prob: prob,
            ..Default::default()
        };
        simulate_stream_with_faults(env, &reqs, Some(&faults))
    }

    #[test]
    fn zero_prob_matches_fault_free() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        let zero = run_with(&env, &dag, &placement, 0.0);
        assert_eq!(zero.trace.failed_attempts, 0);
        assert_eq!(clean.metrics.makespan_s, zero.metrics.makespan_s);
    }

    #[test]
    fn failures_inflate_makespan_and_are_counted() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        let faulty = run_with(&env, &dag, &placement, 0.25);
        assert!(faulty.trace.failed_attempts > 0);
        assert!(
            faulty.metrics.makespan_s > clean.metrics.makespan_s,
            "faulty {} !> clean {}",
            faulty.metrics.makespan_s,
            clean.metrics.makespan_s
        );
        // Retried work burns more energy.
        assert!(faulty.metrics.energy_j > clean.metrics.energy_j);
        // All tasks still complete exactly once (final records).
        assert!(faulty.trace.respects_dependencies(&[&dag]));
        assert_eq!(
            faulty.trace.records.len(),
            dag.len() + faulty.trace.failed_attempts as usize
        );
    }

    #[test]
    fn faults_deterministic_for_seed() {
        let (env, dag, placement) = world();
        let a = run_with(&env, &dag, &placement, 0.2);
        let b = run_with(&env, &dag, &placement, 0.2);
        assert_eq!(a.trace.failed_attempts, b.trace.failed_attempts);
        assert_eq!(a.metrics.makespan_s, b.metrics.makespan_s);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn attempt_limit_enforced() {
        // Single-task DAG on one device with certain-ish failure and a
        // limit of 2 attempts.
        let mut topo = Topology::new();
        let n = topo.add_node("x", Tier::Edge);
        let mut fleet = Fleet::new();
        fleet.add_class(n, DeviceClass::EdgeGateway);
        let env = Env::new(topo, fleet);
        let mut dag = Dag::new("one");
        let input = dag.add_input("in", 1, n);
        let out = dag.add_item("out", 1);
        dag.add_task("t", 1e9, vec![input], vec![out]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0)],
        };
        let reqs = [StreamRequest {
            arrival: SimTime::ZERO,
            dag,
            placement,
        }];
        let faults = FaultSpec {
            fail_prob: 0.999999,
            retry_delay: SimDuration::from_millis(1),
            max_attempts: 2,
            seed: 1,
        };
        simulate_stream_with_faults(&env, &reqs, Some(&faults));
    }

    /// Edge + cloud nodes, one device each, joined by one link.
    fn two_region_world() -> (Env, NodeId, NodeId) {
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(10), 1e9);
        let mut fleet = Fleet::new();
        fleet.add_class(e, DeviceClass::EdgeGateway);
        fleet.add_class(c, DeviceClass::CloudVm);
        (Env::new(topo, fleet), e, c)
    }

    #[test]
    fn site_transitions_tracks_region_last_device() {
        // Two single-device regions: any crash is a region outage.
        let (env, e, c) = two_region_world();
        let partition = RegionPartition::new(&env.topology, vec![vec![e], vec![c]], 0);
        let mut schedule = FaultSchedule::new();
        // Edge device (0) dies at 1s, back at 3s; duplicate crash at 2s is
        // idempotent; cloud device (1) never fully empties its region.
        schedule.push(SimTime::from_secs_f64(1.0), FaultKind::DeviceCrash, 0);
        schedule.push(SimTime::from_secs_f64(2.0), FaultKind::DeviceCrash, 0);
        schedule.push(SimTime::from_secs_f64(3.0), FaultKind::DeviceRecover, 0);
        // Link events must be ignored.
        schedule.push(SimTime::from_secs_f64(1.5), FaultKind::LinkFail, 0);
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(250),
        };
        let got = plane.site_transitions(&env, &partition);
        assert_eq!(
            got,
            vec![
                (SimTime::from_secs_f64(1.0), 0, true),
                (SimTime::from_secs_f64(3.0), 0, false),
            ]
        );
    }

    #[test]
    fn site_transitions_fires_only_when_region_empties() {
        // One region holding both devices: a single crash is not an
        // outage; the region goes down only when the second device dies,
        // and comes back on the first recovery.
        let (env, e, c) = two_region_world();
        let partition = RegionPartition::new(&env.topology, vec![vec![e, c]], 0);
        let mut schedule = FaultSchedule::new();
        schedule.push(SimTime::from_secs_f64(1.0), FaultKind::DeviceCrash, 0);
        schedule.push(SimTime::from_secs_f64(2.0), FaultKind::DeviceCrash, 1);
        schedule.push(SimTime::from_secs_f64(4.0), FaultKind::DeviceRecover, 1);
        schedule.push(SimTime::from_secs_f64(5.0), FaultKind::DeviceRecover, 0);
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(250),
        };
        let got = plane.site_transitions(&env, &partition);
        assert_eq!(
            got,
            vec![
                (SimTime::from_secs_f64(2.0), 0, true),
                (SimTime::from_secs_f64(4.0), 0, false),
            ]
        );
    }
}
