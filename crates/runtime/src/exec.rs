//! A real multi-threaded executor for placed workflows.
//!
//! Where [`crate::simrun`] charges virtual time, this executor runs on the
//! machine you have: one concurrency domain per device (a counting
//! semaphore with the device's core count), real OS threads per task, and
//! wall-clock emulation of compute and transfer durations scaled by
//! [`RealExecutor::time_scale`]. It exists for two reasons:
//!
//! 1. **Validation (experiment T3):** the same placed DAG is run through
//!    the analytic estimator and through this executor; their makespans
//!    must agree to within scheduling jitter, demonstrating that the
//!    estimator's schedules are realizable by a real concurrent runtime.
//! 2. **A Parsl-style local runtime:** [`RealExecutor::execute_custom`]
//!    runs arbitrary user closures per task with the same dependency and
//!    capacity semantics, which is what the examples use.

use continuum_placement::{Env, Placement};
use continuum_workflow::{Dag, TaskId};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting semaphore: acquire `k` permits atomically, block otherwise.
struct Semaphore {
    state: Mutex<u32>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: u32) -> Self {
        Semaphore {
            state: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, k: u32) {
        let mut free = self.state.lock();
        while *free < k {
            self.cv.wait(&mut free);
        }
        *free -= k;
    }

    fn release(&self, k: u32) {
        let mut free = self.state.lock();
        *free += k;
        self.cv.notify_all();
    }
}

/// One-shot broadcast cell carrying a task's wall-clock finish instant.
struct FinishCell {
    slot: Mutex<Option<Instant>>,
    cv: Condvar,
}

impl FinishCell {
    fn new() -> Self {
        FinishCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn set(&self, t: Instant) {
        let mut s = self.slot.lock();
        *s = Some(t);
        self.cv.notify_all();
    }

    fn wait(&self) -> Instant {
        let mut s = self.slot.lock();
        while s.is_none() {
            self.cv.wait(&mut s);
        }
        s.expect("just checked")
    }
}

/// Wall-clock trace of a real execution.
#[derive(Debug, Clone)]
pub struct RealTrace {
    /// Start offset of each task from run begin.
    pub start: Vec<Duration>,
    /// Finish offset of each task from run begin.
    pub finish: Vec<Duration>,
    /// Wall-clock makespan.
    pub makespan: Duration,
    /// Makespan converted back to virtual seconds (divided by the scale).
    pub virtual_makespan_s: f64,
}

impl RealTrace {
    /// Dependency check: every task started after its predecessors
    /// finished (up to the given slack for scheduler jitter).
    pub fn respects_dependencies(&self, dag: &Dag, slack: Duration) -> bool {
        dag.tasks().iter().all(|t| {
            dag.preds(t.id)
                .iter()
                .all(|p| self.finish[p.0 as usize] <= self.start[t.id.0 as usize] + slack)
        })
    }
}

/// The real executor.
#[derive(Debug, Clone)]
pub struct RealExecutor {
    /// Wall seconds per virtual second. Keep small (e.g. `1e-3`) so tests
    /// finish quickly; keep large enough that OS jitter stays negligible.
    pub time_scale: f64,
}

impl Default for RealExecutor {
    fn default() -> Self {
        RealExecutor { time_scale: 1e-3 }
    }
}

impl RealExecutor {
    /// Execute `dag` under `placement`, emulating each task's compute time
    /// (from the device spec) and each transfer's analytic time, both
    /// scaled by `time_scale`.
    pub fn execute(&self, env: &Env, dag: &Dag, placement: &Placement) -> RealTrace {
        self.run(env, dag, placement, None::<&(dyn Fn(TaskId) + Sync)>)
    }

    /// Execute with a user closure per task instead of emulated compute
    /// time. Transfers are still emulated; capacity and dependencies are
    /// enforced identically.
    pub fn execute_custom(
        &self,
        env: &Env,
        dag: &Dag,
        placement: &Placement,
        work: &(dyn Fn(TaskId) + Sync),
    ) -> RealTrace {
        self.run(env, dag, placement, Some(work))
    }

    fn run(
        &self,
        env: &Env,
        dag: &Dag,
        placement: &Placement,
        work: Option<&(dyn Fn(TaskId) + Sync)>,
    ) -> RealTrace {
        assert_eq!(placement.assignment.len(), dag.len());
        let scale = self.time_scale;
        assert!(scale > 0.0);

        let semaphores: Vec<Arc<Semaphore>> = env
            .fleet
            .devices()
            .iter()
            .map(|d| Arc::new(Semaphore::new(d.spec.cores)))
            .collect();
        let cells: Vec<Arc<FinishCell>> = (0..dag.len())
            .map(|_| Arc::new(FinishCell::new()))
            .collect();
        let starts: Vec<Arc<Mutex<Duration>>> = (0..dag.len())
            .map(|_| Arc::new(Mutex::new(Duration::ZERO)))
            .collect();

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for task in dag.tasks() {
                let t = task.id;
                let dev = placement.device(t);
                let spec = env.fleet.device(dev).spec.clone();
                let my_node = env.node_of(dev);
                let sem = Arc::clone(&semaphores[dev.0 as usize]);
                let my_cell = Arc::clone(&cells[t.0 as usize]);
                let my_start = Arc::clone(&starts[t.0 as usize]);
                let pred_cells: Vec<(Arc<FinishCell>, Duration)> = task
                    .inputs
                    .iter()
                    .filter_map(|&d| {
                        let item = dag.data(d);
                        let (src, cell) = match dag.producer(d) {
                            Some(p) => (
                                env.node_of(placement.device(p)),
                                Some(Arc::clone(&cells[p.0 as usize])),
                            ),
                            None => (item.home.expect("external item has home"), None),
                        };
                        let path = env.path(src, my_node).expect("disconnected topology");
                        let xfer = Duration::from_secs_f64(
                            path.transfer_time(item.bytes).as_secs_f64() * scale,
                        );
                        cell.map(|c| (c, xfer))
                    })
                    .collect();
                // Transfers of external inputs start at t0.
                let ext_delay: Duration = task
                    .inputs
                    .iter()
                    .filter(|&&d| dag.producer(d).is_none())
                    .map(|&d| {
                        let item = dag.data(d);
                        let src = item.home.expect("external item has home");
                        let path = env.path(src, my_node).expect("disconnected topology");
                        Duration::from_secs_f64(
                            path.transfer_time(item.bytes).as_secs_f64() * scale,
                        )
                    })
                    .max()
                    .unwrap_or(Duration::ZERO);
                let exec_dur = Duration::from_secs_f64(
                    spec.compute_time_parallel(task.work_flops, task.parallelism)
                        .as_secs_f64()
                        * scale,
                );
                let need = task.occupancy(spec.cores);

                scope.spawn(move || {
                    // Wait for every input's arrival deadline.
                    let mut deadline = t0 + ext_delay;
                    for (cell, xfer) in &pred_cells {
                        let fin = cell.wait();
                        deadline = deadline.max(fin + *xfer);
                    }
                    let now = Instant::now();
                    if deadline > now {
                        std::thread::sleep(deadline - now);
                    }
                    sem.acquire(need);
                    let begin = Instant::now();
                    *my_start.lock() = begin - t0;
                    match work {
                        Some(f) => f(t),
                        None => std::thread::sleep(exec_dur),
                    }
                    sem.release(need);
                    my_cell.set(Instant::now());
                });
            }
        });

        let finish: Vec<Duration> = cells.iter().map(|c| c.wait().duration_since(t0)).collect();
        let start: Vec<Duration> = starts.iter().map(|s| *s.lock()).collect();
        let makespan = finish.iter().copied().max().unwrap_or(Duration::ZERO);
        RealTrace {
            start,
            finish,
            makespan,
            virtual_makespan_s: makespan.as_secs_f64() / scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::{DeviceClass, Fleet};
    use continuum_net::{Tier, Topology};
    use continuum_placement::{evaluate, HeftPlacer, Placer};
    use continuum_sim::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn two_node_env() -> Env {
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(10), 1e8);
        let mut fleet = Fleet::new();
        fleet.add_class(e, DeviceClass::EdgeGateway);
        fleet.add_class(c, DeviceClass::CloudVm);
        Env::new(topo, fleet)
    }

    fn chain_dag(env: &Env, n: usize) -> Dag {
        let mut g = Dag::new("chain");
        let src = env.fleet.devices()[0].node;
        let mut prev = g.add_input("in", 1 << 20, src);
        for i in 0..n {
            let out = g.add_item(format!("d{i}"), 1 << 18);
            g.add_task(format!("t{i}"), 5e9, vec![prev], vec![out]);
            prev = out;
        }
        g
    }

    #[test]
    fn real_matches_estimate_on_chain() {
        let env = two_node_env();
        let dag = chain_dag(&env, 4);
        let placement = HeftPlacer::default().place(&env, &dag);
        let (_, est) = evaluate(&env, &dag, &placement);
        // 0.2 wall-seconds per virtual second: ~110 ms of emulated run,
        // large enough that per-hop scheduler jitter (~1 ms) stays small.
        let exec = RealExecutor { time_scale: 0.2 };
        let real = exec.execute(&env, &dag, &placement);
        let rel = (real.virtual_makespan_s - est.makespan_s).abs() / est.makespan_s;
        assert!(
            rel < 0.25,
            "real {} vs estimate {} (rel {rel})",
            real.virtual_makespan_s,
            est.makespan_s
        );
        assert!(real.respects_dependencies(&dag, Duration::from_millis(2)));
    }

    #[test]
    fn semaphore_enforces_capacity() {
        let env = two_node_env();
        // 8 independent tasks pinned to the 4-core edge device.
        let mut g = Dag::new("fanout");
        let src = env.fleet.devices()[0].node;
        let input = g.add_input("in", 1, src);
        for i in 0..8 {
            let o = g.add_item(format!("o{i}"), 1);
            g.add_task(format!("t{i}"), 1.2e10, vec![input], vec![o]);
        }
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0); 8],
        };
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let exec = RealExecutor { time_scale: 5e-3 };
        exec.execute_custom(&env, &g, &placement, &|_| {
            let cur = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(cur, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(15));
            running.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 4,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
        assert!(peak.load(Ordering::SeqCst) >= 2, "no concurrency at all");
    }

    #[test]
    fn custom_work_runs_every_task_once() {
        let env = two_node_env();
        let dag = chain_dag(&env, 6);
        let placement = HeftPlacer::default().place(&env, &dag);
        let count = AtomicUsize::new(0);
        let exec = RealExecutor { time_scale: 1e-4 };
        exec.execute_custom(&env, &dag, &placement, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), dag.len());
    }
}
