//! Region-sharded stream execution.
//!
//! [`simulate_stream_sharded`] splits a workload across several
//! [`crate::simrun`] executor cores — one per shard — and runs them under
//! the conservative driver in `continuum-sim`. The result is **bit
//! identical** to [`crate::simulate_stream_chaos`] on the same inputs,
//! because sharding here is *request-confined*: requests are grouped so
//! that no two shards ever touch the same device or link, which makes the
//! per-shard max-min bandwidth decomposition exact rather than
//! approximate.
//!
//! The grouping ([`plan_shards`]) works on a [`RegionPartition`] of the
//! topology (pods of a fat-tree, fog subtrees of a continuum):
//!
//! 1. every request gets the set of regions its placement and external
//!    data homes touch;
//! 2. regions that co-occur in any request are merged (union-find), and a
//!    request spanning ≥ 2 regions also pulls in the partition's core
//!    region, since its transfers route through the backbone;
//! 3. each resulting component becomes a shard (components beyond
//!    `max_shards` are folded round-robin into the existing bins).
//!
//! Components share no regions, regions share no links, and cross-region
//! routes only traverse the two endpoints' regions plus the core — so
//! two requests in different components can never contend for bandwidth
//! or cores, and per-shard simulation loses nothing.
//!
//! Under a fault plane, orphan re-placement is masked to the shard's own
//! devices so repairs cannot leak across the partition (see
//! [`ShardOpts`]).
//!
//! # Pinned mode: when the workload refuses to decompose
//!
//! Request confinement collapses to one shard on exactly the workloads
//! the continuum keynote cares about — sensor-to-cloud pipelines where
//! *every* request spans fog and cloud, so every region co-occurs with
//! the backbone and the union-find produces a single component.
//! [`ShardMode::Pinned`] shards those workloads anyway: regions are
//! dealt round-robin to shards, every task runs exactly where it was
//! placed (no re-placement, hence no fault plane), and a transfer whose
//! route crosses a region boundary is cut into per-region segments. Each
//! segment streams in its own region's max-min flow domain; the handoff
//! between segments defers the boundary link's propagation latency, so a
//! stage entering another shard's region is always stamped at least that
//! latency in the future — the conservative lookahead that lets
//! [`ConservativeDriver`] exchange stages as [`Envelope`]s between
//! windows without ever delivering into a shard's past. Event keys
//! derived from content (not insertion order) make the result
//! bit-identical across 1, 2, or N shards, serial or parallel; see
//! `crate::simrun`'s partition machinery.

use crate::simrun::{
    assemble, ExecCore, FaultPlane, FaultSpec, ShardLayout, SimOutcome, StreamRequest, TransferMsg,
};
use continuum_net::RegionPartition;
use continuum_obs::{MetricsRegistry, Telemetry};
use continuum_placement::Env;
use continuum_sim::{
    run_conservative, ConservativeDriver, Envelope, Lookahead, ShardModel, SimDuration, SimTime,
    WindowStats,
};

/// How requests are split across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Group whole requests so shards share no regions (the union-find
    /// plan): exact, supports the full fault stack, but collapses to one
    /// shard when requests span regions.
    #[default]
    Confined,
    /// Pin every task to the shard owning its placed device and carry
    /// boundary-crossing transfers between shards as conservative
    /// envelopes. Shards continuum workloads where every request spans
    /// fog and cloud. Rejects the infrastructure fault plane
    /// (re-placement would migrate tasks across shards); per-attempt
    /// [`FaultSpec`] retries work — a retry reruns on the same device.
    Pinned,
}

/// Knobs for [`simulate_stream_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOpts {
    /// Upper bound on the number of shards. Components beyond this are
    /// folded together round-robin; `usize::MAX` keeps one shard per
    /// component (confined) or one shard per region (pinned).
    pub max_shards: usize,
    /// Run shards in conservative barrier windows of width
    /// `lookahead` (the partition's minimum boundary-link latency)
    /// instead of straight to completion. Because request-confined shards
    /// exchange no events, both modes are bit-identical; windowed mode
    /// exists to exercise and validate the conservative synchronization
    /// path, at the cost of one barrier per window. Ignored in pinned
    /// mode, which is inherently windowed for more than one shard.
    pub windowed: bool,
    /// Advance shards on worker threads within each window. Determinism
    /// does not depend on this (see `continuum_sim::shard`).
    pub parallel: bool,
    /// Request confinement (default) or task pinning.
    pub mode: ShardMode,
}

impl Default for ShardOpts {
    fn default() -> Self {
        ShardOpts {
            max_shards: usize::MAX,
            windowed: false,
            parallel: true,
            mode: ShardMode::Confined,
        }
    }
}

impl ShardOpts {
    /// Parallel, non-windowed execution with at most `n` shards.
    pub fn with_max_shards(n: usize) -> Self {
        ShardOpts {
            max_shards: n.max(1),
            ..ShardOpts::default()
        }
    }

    /// Pinned-mode execution with at most `n` shards.
    pub fn pinned(n: usize) -> Self {
        ShardOpts {
            max_shards: n.max(1),
            mode: ShardMode::Pinned,
            ..ShardOpts::default()
        }
    }
}

/// Output of [`plan_shards`]: which requests and regions each shard owns.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per shard, the global indices of the requests it simulates, in
    /// ascending order. Every request appears in exactly one shard.
    pub groups: Vec<Vec<usize>>,
    /// Per shard, the region indices it owns, in ascending order.
    /// Disjoint across shards.
    pub region_sets: Vec<Vec<usize>>,
}

/// Minimal union-find over region indices.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Self {
        Uf((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.0[r] != r {
            r = self.0[r];
        }
        let mut c = x;
        while self.0[c] != c {
            let next = self.0[c];
            self.0[c] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Root at the smaller index so components are named
        // deterministically.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.0[hi] = lo;
    }
}

/// The regions a request touches: those of its placement's devices plus
/// those of its external data items' home nodes. Sorted and deduplicated.
fn regions_of_request(env: &Env, r: &StreamRequest, partition: &RegionPartition) -> Vec<usize> {
    let mut regs: Vec<usize> = r
        .placement
        .assignment
        .iter()
        .map(|&d| partition.region_of(env.node_of(d)))
        .collect();
    for item in r.dag.data_items() {
        if let Some(home) = item.home {
            regs.push(partition.region_of(home));
        }
    }
    regs.sort_unstable();
    regs.dedup();
    regs
}

/// Group requests into shards that share no regions (see module docs for
/// the algorithm). Deterministic: component order follows the first
/// request (by global index) that touches each component, and the
/// round-robin fold beyond `max_shards` depends only on that order.
pub fn plan_shards(
    env: &Env,
    requests: &[StreamRequest],
    partition: &RegionPartition,
    max_shards: usize,
) -> ShardPlan {
    let max_shards = max_shards.max(1);
    let nr = partition.len();
    let core = partition.core_region();
    let mut uf = Uf::new(nr);
    let per_req: Vec<Vec<usize>> = requests
        .iter()
        .map(|r| regions_of_request(env, r, partition))
        .collect();
    for regs in &per_req {
        for w in regs.windows(2) {
            uf.union(w[0], w[1]);
        }
        // A spanning request's transfers route through the backbone.
        if regs.len() >= 2 {
            uf.union(regs[0], core);
        }
    }
    // Components in order of the first request that touches them; a
    // request with no placement (empty DAG) rides with the core region.
    let mut bin_of_root: Vec<Option<usize>> = vec![None; nr];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut roots: Vec<Vec<usize>> = Vec::new(); // component roots per bin
    let mut n_comps = 0usize;
    for (gid, regs) in per_req.iter().enumerate() {
        let root = uf.find(regs.first().copied().unwrap_or(core));
        let bin = *bin_of_root[root].get_or_insert_with(|| {
            let b = n_comps % max_shards;
            n_comps += 1;
            if b == groups.len() {
                groups.push(Vec::new());
                roots.push(Vec::new());
            }
            roots[b].push(root);
            b
        });
        groups[bin].push(gid);
    }
    // A shard owns every region of its components (touched or not —
    // untouched regions of a component belong to no other shard, so
    // claiming them is safe and keeps masks simple).
    let region_sets: Vec<Vec<usize>> = roots
        .iter()
        .map(|rs| (0..nr).filter(|&r| rs.contains(&uf.find(r))).collect())
        .collect();
    ShardPlan {
        groups,
        region_sets,
    }
}

/// [`ShardModel`] adapter: one executor core, pumped window by window.
/// Request-confined shards exchange no messages, so the outbox is always
/// empty and `Msg = ()`.
struct CoreShard<'a> {
    core: ExecCore<'a>,
}

impl ShardModel for CoreShard<'_> {
    type Msg = ();

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.core.next_event_time()
    }

    fn advance(
        &mut self,
        horizon: Option<SimTime>,
        _inbox: Vec<Envelope<()>>,
    ) -> Vec<Envelope<()>> {
        self.core.pump(horizon);
        Vec::new()
    }
}

/// [`ShardModel`] adapter for pinned execution: delivers inbound transfer
/// stages into the core's keyed calendar, pumps the window, and wraps the
/// core's outbox — stages bound for regions other shards own — into
/// envelopes addressed by region ownership.
pub(crate) struct PinShard<'a> {
    pub(crate) core: ExecCore<'a>,
    /// Region index -> owning shard index.
    shard_of_region: Vec<u32>,
    me: u32,
    /// Sender-local envelope sequence (a formality here: the receiver
    /// re-keys every stage by content, so delivery order is immaterial).
    seq: u64,
}

impl ShardModel for PinShard<'_> {
    type Msg = TransferMsg;

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.core.next_event_time()
    }

    fn advance(
        &mut self,
        horizon: Option<SimTime>,
        inbox: Vec<Envelope<TransferMsg>>,
    ) -> Vec<Envelope<TransferMsg>> {
        for e in inbox {
            self.core.receive_part(e.at, e.msg);
        }
        self.core.pump(horizon);
        self.core
            .take_outbox()
            .into_iter()
            .map(|(at, region, msg)| {
                self.seq += 1;
                Envelope {
                    at,
                    from: self.me,
                    seq: self.seq,
                    to: self.shard_of_region[region as usize],
                    msg,
                }
            })
            .collect()
    }
}

/// Build one pinned-mode executor core per shard: regions are dealt
/// round-robin (`region % n`), each request is registered on every shard
/// owning a region it touches (its *participants*), and each core is
/// switched to partitioned execution over its owned regions. Returns the
/// shards plus the per-shard participant groups (for telemetry).
pub(crate) fn build_pinned_shards<'a>(
    env: &'a Env,
    requests: &'a [StreamRequest],
    faults: Option<&'a FaultSpec>,
    partition: &'a RegionPartition,
    max_shards: usize,
    collect: bool,
    trace_on: bool,
) -> (Vec<PinShard<'a>>, Vec<Vec<usize>>) {
    let nr = partition.len();
    let n = max_shards.clamp(1, nr);
    let shard_of_region: Vec<u32> = (0..nr).map(|r| (r % n) as u32).collect();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gid, r) in requests.iter().enumerate() {
        let regs = regions_of_request(env, r, partition);
        let mut parts: Vec<u32> = if regs.is_empty() {
            vec![shard_of_region[partition.core_region()]]
        } else {
            regs.iter().map(|&rg| shard_of_region[rg]).collect()
        };
        parts.sort_unstable();
        parts.dedup();
        for p in parts {
            groups[p as usize].push(gid);
        }
    }
    let shards = (0..n)
        .map(|i| {
            let refs: Vec<&StreamRequest> = groups[i].iter().map(|&gid| &requests[gid]).collect();
            let mut core = ExecCore::new(
                env,
                refs,
                groups[i].clone(),
                faults,
                None,
                None,
                collect,
                trace_on,
            );
            let owned: Vec<bool> = (0..nr).map(|r| shard_of_region[r] == i as u32).collect();
            core.enable_partition(partition, owned);
            PinShard {
                core,
                shard_of_region: shard_of_region.clone(),
                me: i as u32,
                seq: 0,
            }
        })
        .collect();
    (shards, groups)
}

/// Build empty pinned-mode *streaming* cores — one per shard — for the
/// open-loop driver: no requests are registered up front; the caller
/// injects each admitted arrival into its participant shards.
pub(crate) fn build_pinned_streaming_shards<'a>(
    env: &'a Env,
    faults: Option<&'a FaultSpec>,
    partition: &'a RegionPartition,
    max_shards: usize,
    collect: bool,
) -> Vec<PinShard<'a>> {
    let nr = partition.len();
    let n = max_shards.clamp(1, nr);
    let shard_of_region: Vec<u32> = (0..nr).map(|r| (r % n) as u32).collect();
    (0..n)
        .map(|i| {
            let mut core = ExecCore::new(
                env,
                Vec::new(),
                Vec::new(),
                faults,
                None,
                None,
                collect,
                false,
            );
            core.enable_streaming();
            let owned: Vec<bool> = (0..nr).map(|r| shard_of_region[r] == i as u32).collect();
            core.enable_partition(partition, owned);
            PinShard {
                core,
                shard_of_region: shard_of_region.clone(),
                me: i as u32,
                seq: 0,
            }
        })
        .collect()
}

/// The shards participating in `r` under a round-robin deal of
/// `partition`'s regions over `n` shards: owners of the regions the
/// request touches (core region's owner for an empty region set).
/// Sorted, deduplicated.
pub(crate) fn pinned_participants(
    env: &Env,
    r: &StreamRequest,
    partition: &RegionPartition,
    n: usize,
) -> Vec<usize> {
    let regs = regions_of_request(env, r, partition);
    let mut parts: Vec<usize> = if regs.is_empty() {
        vec![partition.core_region() % n]
    } else {
        regs.iter().map(|&rg| rg % n).collect()
    };
    parts.sort_unstable();
    parts.dedup();
    parts
}

/// Per-shard incoming lookaheads for a pinned round-robin deal: shard
/// `s` may run `min latency over boundary links adjacent to its owned
/// regions` past the global horizon.
pub(crate) fn pinned_lookaheads(
    env: &Env,
    partition: &RegionPartition,
    n: usize,
) -> Vec<SimDuration> {
    let nr = partition.len();
    (0..n)
        .map(|i| {
            let owned: Vec<bool> = (0..nr).map(|r| r % n == i).collect();
            partition
                .incoming_lookahead(&env.topology, &owned)
                .expect("a multi-shard partition has boundary links")
        })
        .collect()
}

/// Satellite telemetry for a sharded run: plan shape, per-shard event
/// counts, and (when windowed) message traffic.
fn publish_shard_metrics(
    tele: &Telemetry,
    groups: &[Vec<usize>],
    events: &[u64],
    wstats: Option<&WindowStats>,
) {
    let reg = MetricsRegistry::new();
    reg.inc("shard.runs", 1);
    reg.record("shard.count", groups.len() as u64);
    let assigned: usize = groups.iter().map(Vec::len).sum();
    if assigned > 0 {
        let largest = groups.iter().map(Vec::len).max().unwrap_or(0);
        reg.set_gauge(
            "shard.plan_largest_fraction",
            largest as f64 / assigned as f64,
        );
    }
    let total_events: u64 = events.iter().sum();
    for (i, &e) in events.iter().enumerate() {
        reg.inc_labeled("shard.events", i as u32, e);
    }
    if total_events > 0 {
        let largest = events.iter().copied().max().unwrap_or(0);
        reg.set_gauge(
            "shard.largest_fraction",
            largest as f64 / total_events as f64,
        );
        // Utilization view of the same counts: mean events per shard and
        // imbalance = max/mean (1.0 = perfectly level). The health plane
        // and CI smoke key off `shard.util.*`.
        let mean = total_events as f64 / events.len() as f64;
        reg.set_gauge("shard.util.mean_events", mean);
        reg.set_gauge("shard.util.imbalance", largest as f64 / mean);
    }
    if let Some(w) = wstats {
        reg.record("shard.windows", w.windows);
        reg.inc("shard.messages", w.messages);
        for (i, &m) in w.per_shard_messages.iter().enumerate() {
            reg.inc_labeled("shard.messages_to", i as u32, m);
        }
    }
    tele.metrics.absorb(&reg.snapshot());
}

/// Sharded [`crate::simulate_stream_chaos`]: same contract, same result
/// — bit-identical trace and metrics — computed by up to
/// `opts.max_shards` executor cores running in parallel over a region
/// partition of the topology.
///
/// # Panics
/// If `partition` does not cover `env`'s topology (see
/// [`RegionPartition::new`]), or on any condition the single-queue
/// executor panics on (invalid `FaultSpec`, deadlocked DAG, ...).
pub fn simulate_stream_sharded(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    plane: Option<&FaultPlane>,
    partition: &RegionPartition,
    opts: &ShardOpts,
) -> SimOutcome {
    match opts.mode {
        ShardMode::Confined => simulate_confined(env, requests, faults, plane, partition, opts),
        ShardMode::Pinned => {
            assert!(
                plane.is_none(),
                "pinned mode rejects the infrastructure fault plane: orphan \
                 re-placement would migrate tasks across shards"
            );
            simulate_pinned(env, requests, faults, partition, opts)
        }
    }
}

/// Pinned-mode [`simulate_stream_sharded`] without the confined-mode
/// parameters that do not apply (fault plane, windowing knob).
pub fn simulate_stream_pinned(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    partition: &RegionPartition,
    max_shards: usize,
) -> SimOutcome {
    simulate_pinned(
        env,
        requests,
        faults,
        partition,
        &ShardOpts::pinned(max_shards),
    )
}

/// Request-confined execution: the union-find plan, one core per
/// component.
fn simulate_confined(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    plane: Option<&FaultPlane>,
    partition: &RegionPartition,
    opts: &ShardOpts,
) -> SimOutcome {
    let tele = continuum_obs::ambient();
    let collect = tele.is_some();
    let trace_on = tele.as_deref().is_some_and(Telemetry::trace_enabled);
    let mut plan = plan_shards(env, requests, partition, opts.max_shards);
    if plan.groups.is_empty() {
        // No requests: one empty core still runs the fault schedule so
        // the outcome's fault counters match the single-queue executor.
        plan.groups.push(Vec::new());
        plan.region_sets.push((0..partition.len()).collect());
    }
    let sharded = plan.groups.len() > 1;
    let mut shards: Vec<CoreShard> = plan
        .groups
        .iter()
        .zip(&plan.region_sets)
        .map(|(group, regions)| {
            let refs: Vec<&StreamRequest> = group.iter().map(|&gid| &requests[gid]).collect();
            // Mask orphan re-placement to the shard's own devices, but
            // only when there is more than one shard — a lone core may
            // use the whole fleet, exactly like the single-queue path.
            let mask = (sharded && plane.is_some()).then(|| {
                (0..env.fleet.len())
                    .map(|d| {
                        let node = env.node_of(continuum_model::DeviceId(d as u32));
                        regions.binary_search(&partition.region_of(node)).is_ok()
                    })
                    .collect::<Vec<bool>>()
            });
            CoreShard {
                core: ExecCore::new(
                    env,
                    refs,
                    group.clone(),
                    faults,
                    plane,
                    mask,
                    collect,
                    trace_on,
                ),
            }
        })
        .collect();
    let (shards, wstats) = if shards.len() == 1 {
        // One shard exchanges nothing, so conservative windows only add
        // horizon bookkeeping per barrier: run straight to completion
        // regardless of `opts.windowed`. Bit-identical either way.
        shards[0].core.pump(None);
        (shards, None)
    } else {
        let lookahead = if opts.windowed {
            partition.lookahead()
        } else {
            None
        };
        let (shards, w) = run_conservative(shards, lookahead, opts.parallel);
        (shards, Some(w))
    };
    if let Some(t) = &tele {
        let events: Vec<u64> = shards.iter().map(|s| s.core.scheduled_events()).collect();
        publish_shard_metrics(t, &plan.groups, &events, wstats.as_ref());
    }
    let layout = trace_on.then(|| {
        // Regions of untouched components default to shard 0; no device
        // slice ever references them.
        let mut shard_of_region: Vec<u32> = vec![0; partition.len()];
        for (s, regions) in plan.region_sets.iter().enumerate() {
            for &r in regions {
                shard_of_region[r] = s as u32;
            }
        }
        ShardLayout::new(env, partition, shard_of_region)
    });
    assemble(
        env,
        requests,
        plane,
        layout.as_ref(),
        shards.into_iter().map(|s| s.core.finish()).collect(),
    )
}

/// Pinned execution: one core per round-robin region deal, boundary
/// transfers carried between cores as conservative envelopes.
fn simulate_pinned(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    partition: &RegionPartition,
    opts: &ShardOpts,
) -> SimOutcome {
    let tele = continuum_obs::ambient();
    let collect = tele.is_some();
    let trace_on = tele.as_deref().is_some_and(Telemetry::trace_enabled);
    let (mut shards, groups) = build_pinned_shards(
        env,
        requests,
        faults,
        partition,
        opts.max_shards,
        collect,
        trace_on,
    );
    let (shards, wstats) = if shards.len() == 1 {
        // The lone shard owns every region, so no transfer ever leaves
        // it: skip the window machinery (same fast path as confined).
        shards[0].core.pump(None);
        (shards, None)
    } else {
        let la = Lookahead::PerShard(pinned_lookaheads(env, partition, shards.len()));
        let mut driver = ConservativeDriver::new(shards, la, opts.parallel);
        driver.run();
        let (shards, w) = driver.into_parts();
        (shards, Some(w))
    };
    if let Some(t) = &tele {
        let events: Vec<u64> = shards.iter().map(|s| s.core.scheduled_events()).collect();
        publish_shard_metrics(t, &groups, &events, wstats.as_ref());
    }
    let layout = trace_on.then(|| {
        let n = shards.len();
        let shard_of_region: Vec<u32> = (0..partition.len()).map(|r| (r % n) as u32).collect();
        ShardLayout::new(env, partition, shard_of_region)
    });
    assemble(
        env,
        requests,
        None,
        layout.as_ref(),
        shards.into_iter().map(|s| s.core.finish()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simrun::simulate_stream_chaos;
    use continuum_model::{standard_fleet, DeviceId};
    use continuum_net::{continuum, continuum_regions, ContinuumSpec, NodeId};
    use continuum_placement::Placement;
    use continuum_sim::{Rng, SimTime};
    use continuum_workflow::{layered_random, LayeredSpec};

    fn build_world() -> (Env, ContinuumSpec, Vec<Vec<NodeId>>) {
        let spec = ContinuumSpec {
            fogs: 3,
            edges_per_fog: 2,
            sensors_per_edge: 2,
            clouds: 2,
            hpcs: 1,
            ..ContinuumSpec::default()
        };
        let built = continuum(&spec);
        let fleet = standard_fleet(&built);
        let env = Env::new(built.topology.clone(), fleet);
        let regions = continuum_regions(&spec);
        (env, spec, regions)
    }

    /// A request whose external inputs, tasks, and devices all live on
    /// the nodes of one region (round-robin over the region's devices).
    fn confined_request(
        env: &Env,
        nodes: &[NodeId],
        source: NodeId,
        seed: u64,
        arrival: SimTime,
    ) -> StreamRequest {
        let mut rng = Rng::new(seed);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 12,
                source,
                ..LayeredSpec::default()
            },
        );
        let devs: Vec<DeviceId> = nodes
            .iter()
            .flat_map(|&n| env.fleet.at_node(n).iter().copied())
            .collect();
        assert!(!devs.is_empty());
        let assignment = (0..dag.len()).map(|i| devs[i % devs.len()]).collect();
        StreamRequest {
            dag,
            placement: Placement { assignment },
            arrival,
        }
    }

    /// One request per fog subtree, each confined to its region, plus
    /// (optionally) one spanning request over fogs 0 and 1 and the
    /// backbone.
    fn workload(env: &Env, regions: &[Vec<NodeId>], spanning: bool) -> Vec<StreamRequest> {
        let mut reqs = Vec::new();
        for (f, nodes) in regions[1..].iter().enumerate() {
            // Last node of a fog region is one of its sensors.
            let source = *nodes.last().expect("non-empty region");
            reqs.push(confined_request(
                env,
                nodes,
                source,
                41 * (f as u64 + 1),
                SimTime::from_millis(13 * f as u64),
            ));
        }
        if spanning {
            let mut nodes = regions[1].clone();
            nodes.extend(&regions[2]);
            nodes.extend(&regions[0]);
            let source = *regions[1].last().expect("non-empty region");
            reqs.push(confined_request(
                env,
                &nodes,
                source,
                777,
                SimTime::from_millis(5),
            ));
        }
        reqs
    }

    /// One request per fog, each spanning its fog region *and* the
    /// backbone — the continuum shape where request confinement collapses
    /// to one shard.
    fn spanning_workload(env: &Env, regions: &[Vec<NodeId>]) -> Vec<StreamRequest> {
        regions[1..]
            .iter()
            .enumerate()
            .map(|(f, fog)| {
                let mut nodes = fog.clone();
                nodes.extend(&regions[0]);
                let source = *fog.last().expect("non-empty region");
                confined_request(
                    env,
                    &nodes,
                    source,
                    97 * (f as u64 + 1),
                    SimTime::from_millis(7 * f as u64),
                )
            })
            .collect()
    }

    #[test]
    fn pinned_matches_one_shard_bit_for_bit() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = spanning_workload(&env, &regions);
        // Confinement collapses on this workload: one component.
        let plan = plan_shards(&env, &requests, &partition, usize::MAX);
        assert_eq!(plan.groups.len(), 1, "workload should defeat confinement");
        let reference = simulate_stream_sharded(
            &env,
            &requests,
            None,
            None,
            &partition,
            &ShardOpts::pinned(1),
        );
        for (i, &fin) in reference.trace.request_finish.iter().enumerate() {
            assert!(fin > requests[i].arrival, "request {i} never finished");
        }
        for n in [2, 3, 4] {
            for parallel in [true, false] {
                let opts = ShardOpts {
                    parallel,
                    ..ShardOpts::pinned(n)
                };
                let got = simulate_stream_sharded(&env, &requests, None, None, &partition, &opts);
                assert_eq!(got, reference, "pinned n={n} parallel={parallel} diverged");
            }
        }
    }

    #[test]
    fn pinned_matches_one_shard_with_retries() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = spanning_workload(&env, &regions);
        let fs = FaultSpec {
            fail_prob: 0.2,
            max_attempts: 10,
            retry_delay: continuum_sim::SimDuration::from_millis(50),
            seed: 7,
        };
        let reference = simulate_stream_pinned(&env, &requests, Some(&fs), &partition, 1);
        assert!(reference.trace.failed_attempts > 0, "want retries in play");
        for n in [2, 4] {
            let got = simulate_stream_pinned(&env, &requests, Some(&fs), &partition, n);
            assert_eq!(got, reference, "pinned n={n} with retries diverged");
        }
    }

    #[test]
    fn pinned_mixed_workload_matches_one_shard() {
        // Confined *and* spanning requests together: pinned mode must
        // handle participants that own every region of a request as well
        // as proper cross-shard splits.
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let mut requests = workload(&env, &regions, true);
        requests.extend(spanning_workload(&env, &regions));
        let reference = simulate_stream_pinned(&env, &requests, None, &partition, 1);
        for n in [2, 4] {
            let got = simulate_stream_pinned(&env, &requests, None, &partition, n);
            assert_eq!(got, reference, "pinned n={n} mixed workload diverged");
        }
    }

    #[test]
    fn pinned_empty_request_list_runs() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions, 0);
        let a = simulate_stream_pinned(&env, &[], None, &partition, 1);
        let b = simulate_stream_pinned(&env, &[], None, &partition, 4);
        assert_eq!(a, b);
        assert_eq!(a.trace.request_finish.len(), 0);
    }

    #[test]
    fn plan_is_a_partition_of_requests_and_regions() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = workload(&env, &regions, true);
        let plan = plan_shards(&env, &requests, &partition, usize::MAX);
        // Fogs 0+1+backbone merge via the spanning request; fog 2 stands
        // alone.
        assert_eq!(plan.groups.len(), 2);
        let mut seen = vec![false; requests.len()];
        for g in &plan.groups {
            for &gid in g {
                assert!(!seen[gid], "request {gid} in two shards");
                seen[gid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Region sets are disjoint.
        let mut owned = vec![false; partition.len()];
        for rs in &plan.region_sets {
            for &r in rs {
                assert!(!owned[r], "region {r} owned by two shards");
                owned[r] = true;
            }
        }
    }

    #[test]
    fn max_shards_folds_components() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = workload(&env, &regions, false);
        let unlimited = plan_shards(&env, &requests, &partition, usize::MAX);
        assert_eq!(unlimited.groups.len(), 3); // one per fog
        let capped = plan_shards(&env, &requests, &partition, 2);
        assert_eq!(capped.groups.len(), 2);
        let total: usize = capped.groups.iter().map(Vec::len).sum();
        assert_eq!(total, requests.len());
    }

    #[test]
    fn sharded_matches_single_queue_bit_for_bit() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        for spanning in [false, true] {
            let requests = workload(&env, &regions, spanning);
            let single = simulate_stream_chaos(&env, &requests, None, None);
            for opts in [
                ShardOpts::default(),
                ShardOpts {
                    windowed: true,
                    ..ShardOpts::default()
                },
                ShardOpts {
                    parallel: false,
                    ..ShardOpts::default()
                },
                ShardOpts::with_max_shards(2),
                ShardOpts::with_max_shards(1),
            ] {
                let sharded =
                    simulate_stream_sharded(&env, &requests, None, None, &partition, &opts);
                assert_eq!(sharded, single, "opts {opts:?} diverged");
            }
        }
    }

    #[test]
    fn sharded_matches_single_queue_with_retries() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = workload(&env, &regions, true);
        let fs = FaultSpec {
            fail_prob: 0.2,
            max_attempts: 10,
            retry_delay: continuum_sim::SimDuration::from_millis(50),
            seed: 99,
        };
        let single = simulate_stream_chaos(&env, &requests, Some(&fs), None);
        assert!(single.trace.failed_attempts > 0, "want retries in play");
        let sharded = simulate_stream_sharded(
            &env,
            &requests,
            Some(&fs),
            None,
            &partition,
            &ShardOpts::default(),
        );
        assert_eq!(sharded, single);
    }

    #[test]
    fn empty_request_list_matches_single_queue() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions, 0);
        let single = simulate_stream_chaos(&env, &[], None, None);
        let sharded =
            simulate_stream_sharded(&env, &[], None, None, &partition, &ShardOpts::default());
        assert_eq!(sharded, single);
    }
}
