//! Region-sharded stream execution.
//!
//! [`simulate_stream_sharded`] splits a workload across several
//! [`crate::simrun`] executor cores — one per shard — and runs them under
//! the conservative driver in `continuum-sim`. The result is **bit
//! identical** to [`crate::simulate_stream_chaos`] on the same inputs,
//! because sharding here is *request-confined*: requests are grouped so
//! that no two shards ever touch the same device or link, which makes the
//! per-shard max-min bandwidth decomposition exact rather than
//! approximate.
//!
//! The grouping ([`plan_shards`]) works on a [`RegionPartition`] of the
//! topology (pods of a fat-tree, fog subtrees of a continuum):
//!
//! 1. every request gets the set of regions its placement and external
//!    data homes touch;
//! 2. regions that co-occur in any request are merged (union-find), and a
//!    request spanning ≥ 2 regions also pulls in the partition's core
//!    region, since its transfers route through the backbone;
//! 3. each resulting component becomes a shard (components beyond
//!    `max_shards` are folded round-robin into the existing bins).
//!
//! Components share no regions, regions share no links, and cross-region
//! routes only traverse the two endpoints' regions plus the core — so
//! two requests in different components can never contend for bandwidth
//! or cores, and per-shard simulation loses nothing.
//!
//! Under a fault plane, orphan re-placement is masked to the shard's own
//! devices so repairs cannot leak across the partition (see
//! [`ShardOpts`]).

use crate::simrun::{assemble, ExecCore, FaultPlane, FaultSpec, SimOutcome, StreamRequest};
use continuum_net::RegionPartition;
use continuum_obs::{MetricsRegistry, Telemetry};
use continuum_placement::Env;
use continuum_sim::{run_conservative, Envelope, ShardModel, SimTime};

/// Knobs for [`simulate_stream_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOpts {
    /// Upper bound on the number of shards. Components beyond this are
    /// folded together round-robin; `usize::MAX` keeps one shard per
    /// component.
    pub max_shards: usize,
    /// Run shards in conservative barrier windows of width
    /// `lookahead` (the partition's minimum boundary-link latency)
    /// instead of straight to completion. Because request-confined shards
    /// exchange no events, both modes are bit-identical; windowed mode
    /// exists to exercise and validate the conservative synchronization
    /// path, at the cost of one barrier per window.
    pub windowed: bool,
    /// Advance shards on worker threads within each window. Determinism
    /// does not depend on this (see `continuum_sim::shard`).
    pub parallel: bool,
}

impl Default for ShardOpts {
    fn default() -> Self {
        ShardOpts {
            max_shards: usize::MAX,
            windowed: false,
            parallel: true,
        }
    }
}

impl ShardOpts {
    /// Parallel, non-windowed execution with at most `n` shards.
    pub fn with_max_shards(n: usize) -> Self {
        ShardOpts {
            max_shards: n.max(1),
            ..ShardOpts::default()
        }
    }
}

/// Output of [`plan_shards`]: which requests and regions each shard owns.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per shard, the global indices of the requests it simulates, in
    /// ascending order. Every request appears in exactly one shard.
    pub groups: Vec<Vec<usize>>,
    /// Per shard, the region indices it owns, in ascending order.
    /// Disjoint across shards.
    pub region_sets: Vec<Vec<usize>>,
}

/// Minimal union-find over region indices.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Self {
        Uf((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.0[r] != r {
            r = self.0[r];
        }
        let mut c = x;
        while self.0[c] != c {
            let next = self.0[c];
            self.0[c] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Root at the smaller index so components are named
        // deterministically.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.0[hi] = lo;
    }
}

/// The regions a request touches: those of its placement's devices plus
/// those of its external data items' home nodes. Sorted and deduplicated.
fn regions_of_request(env: &Env, r: &StreamRequest, partition: &RegionPartition) -> Vec<usize> {
    let mut regs: Vec<usize> = r
        .placement
        .assignment
        .iter()
        .map(|&d| partition.region_of(env.node_of(d)))
        .collect();
    for item in r.dag.data_items() {
        if let Some(home) = item.home {
            regs.push(partition.region_of(home));
        }
    }
    regs.sort_unstable();
    regs.dedup();
    regs
}

/// Group requests into shards that share no regions (see module docs for
/// the algorithm). Deterministic: component order follows the first
/// request (by global index) that touches each component, and the
/// round-robin fold beyond `max_shards` depends only on that order.
pub fn plan_shards(
    env: &Env,
    requests: &[StreamRequest],
    partition: &RegionPartition,
    max_shards: usize,
) -> ShardPlan {
    let max_shards = max_shards.max(1);
    let nr = partition.len();
    let core = partition.core_region();
    let mut uf = Uf::new(nr);
    let per_req: Vec<Vec<usize>> = requests
        .iter()
        .map(|r| regions_of_request(env, r, partition))
        .collect();
    for regs in &per_req {
        for w in regs.windows(2) {
            uf.union(w[0], w[1]);
        }
        // A spanning request's transfers route through the backbone.
        if regs.len() >= 2 {
            uf.union(regs[0], core);
        }
    }
    // Components in order of the first request that touches them; a
    // request with no placement (empty DAG) rides with the core region.
    let mut bin_of_root: Vec<Option<usize>> = vec![None; nr];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut roots: Vec<Vec<usize>> = Vec::new(); // component roots per bin
    let mut n_comps = 0usize;
    for (gid, regs) in per_req.iter().enumerate() {
        let root = uf.find(regs.first().copied().unwrap_or(core));
        let bin = *bin_of_root[root].get_or_insert_with(|| {
            let b = n_comps % max_shards;
            n_comps += 1;
            if b == groups.len() {
                groups.push(Vec::new());
                roots.push(Vec::new());
            }
            roots[b].push(root);
            b
        });
        groups[bin].push(gid);
    }
    // A shard owns every region of its components (touched or not —
    // untouched regions of a component belong to no other shard, so
    // claiming them is safe and keeps masks simple).
    let region_sets: Vec<Vec<usize>> = roots
        .iter()
        .map(|rs| (0..nr).filter(|&r| rs.contains(&uf.find(r))).collect())
        .collect();
    ShardPlan {
        groups,
        region_sets,
    }
}

/// [`ShardModel`] adapter: one executor core, pumped window by window.
/// Request-confined shards exchange no messages, so the outbox is always
/// empty and `Msg = ()`.
struct CoreShard<'a> {
    core: ExecCore<'a>,
}

impl ShardModel for CoreShard<'_> {
    type Msg = ();

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.core.next_event_time()
    }

    fn advance(
        &mut self,
        horizon: Option<SimTime>,
        _inbox: Vec<Envelope<()>>,
    ) -> Vec<Envelope<()>> {
        self.core.pump(horizon);
        Vec::new()
    }
}

/// Sharded [`crate::simulate_stream_chaos`]: same contract, same result
/// — bit-identical trace and metrics — computed by up to
/// `opts.max_shards` executor cores running in parallel over a region
/// partition of the topology.
///
/// # Panics
/// If `partition` does not cover `env`'s topology (see
/// [`RegionPartition::new`]), or on any condition the single-queue
/// executor panics on (invalid `FaultSpec`, deadlocked DAG, ...).
pub fn simulate_stream_sharded(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    plane: Option<&FaultPlane>,
    partition: &RegionPartition,
    opts: &ShardOpts,
) -> SimOutcome {
    let tele = continuum_obs::ambient();
    let collect = tele.is_some();
    let trace_on = tele.as_deref().is_some_and(Telemetry::trace_enabled);
    let mut plan = plan_shards(env, requests, partition, opts.max_shards);
    if plan.groups.is_empty() {
        // No requests: one empty core still runs the fault schedule so
        // the outcome's fault counters match the single-queue executor.
        plan.groups.push(Vec::new());
        plan.region_sets.push((0..partition.len()).collect());
    }
    let sharded = plan.groups.len() > 1;
    let shards: Vec<CoreShard> = plan
        .groups
        .iter()
        .zip(&plan.region_sets)
        .map(|(group, regions)| {
            let refs: Vec<&StreamRequest> = group.iter().map(|&gid| &requests[gid]).collect();
            // Mask orphan re-placement to the shard's own devices, but
            // only when there is more than one shard — a lone core may
            // use the whole fleet, exactly like the single-queue path.
            let mask = (sharded && plane.is_some()).then(|| {
                (0..env.fleet.len())
                    .map(|d| {
                        let node = env.node_of(continuum_model::DeviceId(d as u32));
                        regions.binary_search(&partition.region_of(node)).is_ok()
                    })
                    .collect::<Vec<bool>>()
            });
            CoreShard {
                core: ExecCore::new(
                    env,
                    refs,
                    group.clone(),
                    faults,
                    plane,
                    mask,
                    collect,
                    trace_on,
                ),
            }
        })
        .collect();
    let lookahead = if opts.windowed {
        partition.lookahead()
    } else {
        None
    };
    let (shards, wstats) = run_conservative(shards, lookahead, opts.parallel);
    if let Some(t) = &tele {
        let reg = MetricsRegistry::new();
        reg.inc("shard.runs", 1);
        reg.record("shard.count", plan.groups.len() as u64);
        reg.record("shard.windows", wstats.windows);
        t.metrics.absorb(&reg.snapshot());
    }
    assemble(
        env,
        requests,
        plane,
        shards.into_iter().map(|s| s.core.finish()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simrun::simulate_stream_chaos;
    use continuum_model::{standard_fleet, DeviceId};
    use continuum_net::{continuum, continuum_regions, ContinuumSpec, NodeId};
    use continuum_placement::Placement;
    use continuum_sim::{Rng, SimTime};
    use continuum_workflow::{layered_random, LayeredSpec};

    fn build_world() -> (Env, ContinuumSpec, Vec<Vec<NodeId>>) {
        let spec = ContinuumSpec {
            fogs: 3,
            edges_per_fog: 2,
            sensors_per_edge: 2,
            clouds: 2,
            hpcs: 1,
            ..ContinuumSpec::default()
        };
        let built = continuum(&spec);
        let fleet = standard_fleet(&built);
        let env = Env::new(built.topology.clone(), fleet);
        let regions = continuum_regions(&spec);
        (env, spec, regions)
    }

    /// A request whose external inputs, tasks, and devices all live on
    /// the nodes of one region (round-robin over the region's devices).
    fn confined_request(
        env: &Env,
        nodes: &[NodeId],
        source: NodeId,
        seed: u64,
        arrival: SimTime,
    ) -> StreamRequest {
        let mut rng = Rng::new(seed);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 12,
                source,
                ..LayeredSpec::default()
            },
        );
        let devs: Vec<DeviceId> = nodes
            .iter()
            .flat_map(|&n| env.fleet.at_node(n).iter().copied())
            .collect();
        assert!(!devs.is_empty());
        let assignment = (0..dag.len()).map(|i| devs[i % devs.len()]).collect();
        StreamRequest {
            dag,
            placement: Placement { assignment },
            arrival,
        }
    }

    /// One request per fog subtree, each confined to its region, plus
    /// (optionally) one spanning request over fogs 0 and 1 and the
    /// backbone.
    fn workload(env: &Env, regions: &[Vec<NodeId>], spanning: bool) -> Vec<StreamRequest> {
        let mut reqs = Vec::new();
        for (f, nodes) in regions[1..].iter().enumerate() {
            // Last node of a fog region is one of its sensors.
            let source = *nodes.last().expect("non-empty region");
            reqs.push(confined_request(
                env,
                nodes,
                source,
                41 * (f as u64 + 1),
                SimTime::from_millis(13 * f as u64),
            ));
        }
        if spanning {
            let mut nodes = regions[1].clone();
            nodes.extend(&regions[2]);
            nodes.extend(&regions[0]);
            let source = *regions[1].last().expect("non-empty region");
            reqs.push(confined_request(
                env,
                &nodes,
                source,
                777,
                SimTime::from_millis(5),
            ));
        }
        reqs
    }

    #[test]
    fn plan_is_a_partition_of_requests_and_regions() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = workload(&env, &regions, true);
        let plan = plan_shards(&env, &requests, &partition, usize::MAX);
        // Fogs 0+1+backbone merge via the spanning request; fog 2 stands
        // alone.
        assert_eq!(plan.groups.len(), 2);
        let mut seen = vec![false; requests.len()];
        for g in &plan.groups {
            for &gid in g {
                assert!(!seen[gid], "request {gid} in two shards");
                seen[gid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Region sets are disjoint.
        let mut owned = vec![false; partition.len()];
        for rs in &plan.region_sets {
            for &r in rs {
                assert!(!owned[r], "region {r} owned by two shards");
                owned[r] = true;
            }
        }
    }

    #[test]
    fn max_shards_folds_components() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = workload(&env, &regions, false);
        let unlimited = plan_shards(&env, &requests, &partition, usize::MAX);
        assert_eq!(unlimited.groups.len(), 3); // one per fog
        let capped = plan_shards(&env, &requests, &partition, 2);
        assert_eq!(capped.groups.len(), 2);
        let total: usize = capped.groups.iter().map(Vec::len).sum();
        assert_eq!(total, requests.len());
    }

    #[test]
    fn sharded_matches_single_queue_bit_for_bit() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        for spanning in [false, true] {
            let requests = workload(&env, &regions, spanning);
            let single = simulate_stream_chaos(&env, &requests, None, None);
            for opts in [
                ShardOpts::default(),
                ShardOpts {
                    windowed: true,
                    ..ShardOpts::default()
                },
                ShardOpts {
                    parallel: false,
                    ..ShardOpts::default()
                },
                ShardOpts::with_max_shards(2),
                ShardOpts::with_max_shards(1),
            ] {
                let sharded =
                    simulate_stream_sharded(&env, &requests, None, None, &partition, &opts);
                assert_eq!(sharded, single, "opts {opts:?} diverged");
            }
        }
    }

    #[test]
    fn sharded_matches_single_queue_with_retries() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let requests = workload(&env, &regions, true);
        let fs = FaultSpec {
            fail_prob: 0.2,
            max_attempts: 10,
            retry_delay: continuum_sim::SimDuration::from_millis(50),
            seed: 99,
        };
        let single = simulate_stream_chaos(&env, &requests, Some(&fs), None);
        assert!(single.trace.failed_attempts > 0, "want retries in play");
        let sharded = simulate_stream_sharded(
            &env,
            &requests,
            Some(&fs),
            None,
            &partition,
            &ShardOpts::default(),
        );
        assert_eq!(sharded, single);
    }

    #[test]
    fn empty_request_list_matches_single_queue() {
        let (env, _, regions) = build_world();
        let partition = RegionPartition::new(&env.topology, regions, 0);
        let single = simulate_stream_chaos(&env, &[], None, None);
        let sharded =
            simulate_stream_sharded(&env, &[], None, None, &partition, &ShardOpts::default());
        assert_eq!(sharded, single);
    }
}
