//! Property-based tests for the simulation kernel's core invariants.

use continuum_sim::{jain_fairness, EventQueue, OnlineStats, Percentiles, Rng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion order, and equal-time events pop in insertion order.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            prop_assert_eq!(SimTime(times[idx]), t);
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "tie not in insertion order");
                }
            }
            last = Some((t, idx));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().map(|&t| q.schedule_at(SimTime(t), t)).collect();
        let mut expected = 0usize;
        for (i, id) in ids.iter().enumerate() {
            let cancel = *cancel_mask.get(i).unwrap_or(&false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expected += 1;
            }
        }
        prop_assert_eq!(q.len(), expected);
        let mut seen = 0;
        while q.pop().is_some() {
            seen += 1;
        }
        prop_assert_eq!(seen, expected);
    }

    /// The calendar agrees with a naive Vec model across arbitrary
    /// interleavings of schedule / cancel / pop: identical pop sequences,
    /// and `len()` stays exact at every step — including after cancels of
    /// already-popped or already-cancelled ids, which the seed calendar
    /// miscounted, and across the compaction passes the churn triggers.
    #[test]
    fn event_queue_matches_vec_model(
        ops in proptest::collection::vec((0u8..10, 0u64..1000, any::<usize>()), 1..400),
    ) {
        // Model: Vec of (time, seq, payload) for live events; pop = take
        // the (time, seq)-min. Ids issued by the real queue are kept so
        // cancels can target pending, popped, and cancelled ids alike.
        let mut q = EventQueue::new();
        let mut model: Vec<(SimTime, u64, u64)> = Vec::new();
        let mut issued: Vec<(continuum_sim::EventId, u64)> = Vec::new(); // (id, seq)
        let mut next_seq = 0u64;
        let mut now = SimTime::ZERO;
        for (op, dt, pick) in ops {
            match op {
                // Schedule (weight 5/10).
                0..=4 => {
                    let at = SimTime(now.0 + dt);
                    let id = q.schedule_at(at, next_seq);
                    model.push((at, next_seq, next_seq));
                    issued.push((id, next_seq));
                    next_seq += 1;
                }
                // Cancel an arbitrary issued id (weight 3/10).
                5..=7 => {
                    if !issued.is_empty() {
                        let (id, seq) = issued[pick % issued.len()];
                        let live = model.iter().position(|&(_, s, _)| s == seq);
                        prop_assert_eq!(q.cancel(id), live.is_some());
                        if let Some(i) = live {
                            model.swap_remove(i);
                        }
                    }
                }
                // Pop (weight 2/10).
                _ => {
                    let min = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(at, s, _))| (at, s))
                        .map(|(i, _)| i);
                    match min {
                        Some(i) => {
                            let (at, _, payload) = model.swap_remove(i);
                            prop_assert_eq!(q.pop(), Some((at, payload)));
                            now = at;
                        }
                        None => prop_assert_eq!(q.pop(), None),
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert!(q.tombstones() <= 64usize.max(2 * q.len()), "tombstones unbounded");
        }
        // Drain: remaining events pop in (time, insertion-seq) order.
        model.sort_unstable_by_key(|&(at, s, _)| (at, s));
        for (at, _, payload) in model {
            prop_assert_eq!(q.pop(), Some((at, payload)));
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert_eq!(q.len(), 0);
    }

    /// Merging split OnlineStats equals accumulating the whole stream.
    #[test]
    fn online_stats_merge(xs in proptest::collection::vec(-1e6f64..1e6, 2..300), split in 0usize..300) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance().abs()));
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut p = Percentiles::new();
        for &x in &xs { p.push(x); }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = lo;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = p.quantile(q).unwrap();
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }

    /// Jain's index is always in [1/n, 1] for non-negative non-zero loads.
    #[test]
    fn jain_in_bounds(xs in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let j = jain_fairness(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }

    /// Lemire bounded sampling stays in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// Shuffle always yields a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), len in 0usize..200) {
        let mut r = Rng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<usize>>());
    }
}
