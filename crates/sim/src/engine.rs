//! A minimal driver loop over [`EventQueue`].
//!
//! Subsystems that want full control (the continuum runtime, the data
//! fabric) drive their own `while let Some(..) = queue.pop()` loops; this
//! module provides the common scaffolding for the simple case: a model type
//! that reacts to events and schedules more.

use crate::events::EventQueue;
use crate::time::SimTime;

/// A reactive simulation model: consumes events, may schedule new ones.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at virtual time `now`. New events may be scheduled
    /// on `queue`; scheduling into the past is a logic error.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a [`run_until`] call.
///
/// Marked `#[must_use]`: discarding it silently loses the only signal of
/// whether the run drained the calendar or was cut off at the deadline.
#[must_use = "check `drained`/`end_time` to learn why the run stopped"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events dispatched.
    pub events: u64,
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped because the calendar drained (vs. deadline).
    pub drained: bool,
}

/// Dispatch events until the calendar drains or the next event would fire
/// after `deadline`.
///
/// The deadline is **inclusive**: an event stamped exactly at `deadline`
/// is dispatched (and may schedule further events at `deadline`, which
/// are dispatched too); only events strictly after `deadline` are left in
/// the queue. Callers that chain windows — `run_until(t1)` then
/// `run_until(t2)` — therefore see each boundary event exactly once, in
/// the earlier window. When the run is cut off, `end_time` is the time of
/// the last *dispatched* event, not `deadline` itself.
pub fn run_until<M: Model>(
    model: &mut M,
    queue: &mut EventQueue<M::Event>,
    deadline: SimTime,
) -> RunStats {
    let mut events = 0;
    loop {
        match queue.peek_time() {
            None => {
                return RunStats {
                    events,
                    end_time: queue.now(),
                    drained: true,
                };
            }
            Some(t) if t > deadline => {
                return RunStats {
                    events,
                    end_time: queue.now(),
                    drained: false,
                };
            }
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event vanished");
                model.handle(now, ev, queue);
                events += 1;
            }
        }
    }
}

/// Dispatch events until the calendar drains.
pub fn run_to_completion<M: Model>(model: &mut M, queue: &mut EventQueue<M::Event>) -> RunStats {
    run_until(model, queue, SimTime::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A ping-pong model: each Ping schedules a Pong and vice versa, for a
    /// fixed number of rounds.
    struct PingPong {
        remaining: u32,
        log: Vec<&'static str>,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl Model for PingPong {
        type Event = Ev;
        fn handle(&mut self, _now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Ping => {
                    self.log.push("ping");
                    if self.remaining > 0 {
                        q.schedule_in(SimDuration::from_millis(1), Ev::Pong);
                    }
                }
                Ev::Pong => {
                    self.log.push("pong");
                    self.remaining -= 1;
                    if self.remaining > 0 {
                        q.schedule_in(SimDuration::from_millis(1), Ev::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_drains() {
        let mut m = PingPong {
            remaining: 3,
            log: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule_now(Ev::Ping);
        let stats = run_to_completion(&mut m, &mut q);
        assert!(stats.drained);
        assert_eq!(m.log, vec!["ping", "pong", "ping", "pong", "ping", "pong"]);
        assert_eq!(stats.events, 6);
        // 5 hops of 1ms after the initial immediate ping.
        assert_eq!(stats.end_time, SimTime::from_millis(5));
    }

    #[test]
    fn deadline_stops_early() {
        let mut m = PingPong {
            remaining: 1000,
            log: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule_now(Ev::Ping);
        let stats = run_until(&mut m, &mut q, SimTime::from_millis(10));
        assert!(!stats.drained);
        assert!(stats.end_time <= SimTime::from_millis(10));
        assert!(!q.is_empty());
    }

    /// A model that just counts dispatches and schedules nothing.
    struct Counter(u64);
    impl Model for Counter {
        type Event = ();
        fn handle(&mut self, _now: SimTime, (): (), _q: &mut EventQueue<()>) {
            self.0 += 1;
        }
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // Events at t=5ms (the deadline), t=5ms again, and t=5ms+1ns.
        let deadline = SimTime::from_millis(5);
        let just_after = deadline + SimDuration::from_nanos(1);
        let mut m = Counter(0);
        let mut q = EventQueue::new();
        q.schedule_at(deadline, ());
        q.schedule_at(deadline, ());
        q.schedule_at(just_after, ());

        let stats = run_until(&mut m, &mut q, deadline);
        // Both boundary events dispatched; the strictly-later one pinned.
        assert_eq!(m.0, 2);
        assert_eq!(stats.events, 2);
        assert!(!stats.drained);
        assert_eq!(stats.end_time, deadline);
        assert_eq!(q.peek_time(), Some(just_after));

        // A chained window picks up exactly the remaining event.
        let stats = run_until(&mut m, &mut q, just_after);
        assert_eq!(m.0, 3);
        assert_eq!(stats.events, 1);
        assert!(stats.drained);
    }
}
