//! # continuum-sim
//!
//! Deterministic discrete-event simulation kernel underlying the
//! `coding-the-continuum` reproduction.
//!
//! The physical testbed the keynote's experiments would require — a fleet
//! spanning sensors, edge boxes, fog servers, clouds, and supercomputers —
//! is not available, so every experiment in this repository runs on virtual
//! time provided by this crate. The kernel is deliberately small:
//!
//! - [`time`]: integer-nanosecond virtual time ([`SimTime`], [`SimDuration`]).
//! - [`events`]: a cancellable event calendar with deterministic tie-breaking
//!   ([`EventQueue`]).
//! - [`engine`]: a driver loop for reactive models ([`Model`], [`run_until`]).
//! - [`rng`]: a self-contained xoshiro256\*\* PRNG and the distributions the
//!   workload generators need ([`Rng`]).
//! - [`stats`]: online statistics for the experiment harness.
//!
//! Determinism contract: for a fixed seed and workload, every simulation in
//! this workspace produces bit-identical results across runs and platforms.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod fault;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{run_to_completion, run_until, Model, RunStats};
pub use events::{EventId, EventQueue, QueueStats};
pub use fault::{FaultEvent, FaultKind, FaultProcess, FaultSchedule, FaultScheduleSpec};
pub use rng::Rng;
pub use shard::{
    run_conservative, ConservativeDriver, Envelope, Lookahead, ShardModel, WindowStats,
};
pub use stats::{jain_fairness, Histogram, OnlineStats, Percentiles, TimeWeighted};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
