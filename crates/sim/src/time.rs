//! Virtual time for the discrete-event simulator.
//!
//! Time is kept as an integer number of **nanoseconds** so that simulations
//! are bit-reproducible: no floating-point accumulation error can change
//! event ordering between runs or platforms. Durations derived from
//! floating-point rate models (e.g. `bytes / bandwidth`) are rounded up to
//! the next nanosecond, which guarantees strictly positive service times for
//! strictly positive work.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in virtual time, measured in nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, measured in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed span since `earlier`. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding **up** to the next whole
    /// nanosecond so that positive work never collapses to a zero-length
    /// service time.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid SimDuration: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).ceil() as u64)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding up.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).ceil() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_secs_f64(2.5).0, 2_500_000_000);
    }

    #[test]
    fn duration_rounds_up() {
        // One third of a nanosecond of work must still take one nanosecond.
        let d = SimDuration::from_secs_f64(0.333e-9);
        assert_eq!(d.0, 1);
        assert!(!d.is_zero());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        assert_eq!(
            SimDuration::from_micros(4) * 250,
            SimDuration::from_millis(1)
        );
        assert_eq!(
            SimDuration::from_millis(1) / 4,
            SimDuration::from_micros(250)
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_rounds_up() {
        let d = SimDuration::from_nanos(3).mul_f64(0.5);
        assert_eq!(d.0, 2); // ceil(1.5)
    }
}
