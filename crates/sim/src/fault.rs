//! Timed fault schedules: crash/recover events for devices, links, and
//! fabric endpoints.
//!
//! The continuum is not a failure-free fabric — edge devices and fog
//! endpoints disappear far more often than HPC nodes. A [`FaultSchedule`]
//! is the shared vocabulary every executor layer speaks: a time-sorted
//! list of [`FaultEvent`]s, each naming a target *kind* (device, link, or
//! endpoint), the target's dense index within its own id space, and
//! whether it crashes or recovers at that instant.
//!
//! Schedules are plain data: deterministic to generate from a seed
//! ([`FaultSchedule::generate`]), serializable (so an experiment's exact
//! fault trace can be archived next to its results), and interpretable by
//! any consumer — the simulated DAG executor maps device/link events onto
//! its fleet and [flow network](../../continuum_net/index.html), the
//! fabric broker maps endpoint events onto its worker pools.
//!
//! This crate knows nothing about the id types of the upper layers;
//! targets are raw `u32` indices and each consumer validates them against
//! its own population.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What fails (or recovers) — the target kind plus the transition.
///
/// Unit variants only, so the schedule stays serializable with the
/// workspace's vendored serde.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A fleet device stops executing; running work on it is killed.
    DeviceCrash,
    /// A crashed device rejoins, empty (no queue, no running tasks).
    DeviceRecover,
    /// A network link goes dark; flows crossing it are aborted.
    LinkFail,
    /// A failed link carries traffic again at its original capacity.
    LinkRestore,
    /// A fabric endpoint (worker pool) crashes.
    EndpointCrash,
    /// A crashed endpoint rejoins, cold and empty.
    EndpointRecover,
}

impl FaultKind {
    /// True for the crash/fail half of each pair.
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            FaultKind::DeviceCrash | FaultKind::LinkFail | FaultKind::EndpointCrash
        )
    }
}

/// One timed fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which transition.
    pub kind: FaultKind,
    /// Dense index of the target in its own id space (device index, link
    /// index, or endpoint index — disambiguated by `kind`).
    pub target: u32,
}

/// Poisson crash/repair process parameters for one target class.
///
/// Each target alternates up/down: uptime drawn exponential with mean
/// `mttf_s`, downtime exponential with mean `mttr_s`. A class with zero
/// population or non-positive `mttf_s` produces no events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProcess {
    /// Number of targets in the class.
    pub population: u32,
    /// Mean time to failure, seconds (`<= 0` disables the class).
    pub mttf_s: f64,
    /// Mean time to repair, seconds (clamped to a small positive floor).
    pub mttr_s: f64,
}

impl FaultProcess {
    /// A disabled (never-failing) class.
    pub const OFF: FaultProcess = FaultProcess {
        population: 0,
        mttf_s: 0.0,
        mttr_s: 0.0,
    };
}

/// Generation parameters for [`FaultSchedule::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultScheduleSpec {
    /// No crash is *started* after this horizon (recoveries may land
    /// past it so that every crash has a matching recover).
    pub horizon: SimDuration,
    /// Device crash/repair process.
    pub devices: FaultProcess,
    /// Link fail/restore process.
    pub links: FaultProcess,
    /// Endpoint crash/repair process.
    pub endpoints: FaultProcess,
}

impl Default for FaultScheduleSpec {
    fn default() -> Self {
        FaultScheduleSpec {
            horizon: SimDuration::from_secs(60),
            devices: FaultProcess::OFF,
            links: FaultProcess::OFF,
            endpoints: FaultProcess::OFF,
        }
    }
}

/// A time-sorted schedule of crash/recover events.
///
/// Invariants maintained by every constructor:
/// - events are sorted by `(at, kind-stable insertion order)`;
/// - every crash emitted by [`FaultSchedule::generate`] has a matching
///   later recover for the same target, so a generated schedule never
///   leaves the world permanently degraded (hand-built schedules may).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty (fault-free) schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Schedule from explicit events (sorted internally; stable for
    /// equal timestamps, preserving the caller's ordering).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Append one event, keeping the list sorted.
    pub fn push(&mut self, at: SimTime, kind: FaultKind, target: u32) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind, target });
    }

    /// Convenience: a crash at `at` plus its recover at `at + downtime`.
    pub fn crash_and_recover(
        &mut self,
        crash_kind: FaultKind,
        target: u32,
        at: SimTime,
        downtime: SimDuration,
    ) {
        assert!(crash_kind.is_crash(), "expected a crash kind");
        let recover_kind = match crash_kind {
            FaultKind::DeviceCrash => FaultKind::DeviceRecover,
            FaultKind::LinkFail => FaultKind::LinkRestore,
            FaultKind::EndpointCrash => FaultKind::EndpointRecover,
            _ => unreachable!(),
        };
        self.push(at, crash_kind, target);
        self.push(at + downtime, recover_kind, target);
    }

    /// Deterministically generate a schedule from `spec` and `seed`.
    ///
    /// Per target, uptimes are exponential with mean `mttf_s` and
    /// downtimes exponential with mean `mttr_s` (floored at 1 ms so a
    /// crash and its recover never collapse onto one instant). Each
    /// target draws from an independent split of the seed, so changing
    /// one population size does not reshuffle another class's faults.
    pub fn generate(spec: &FaultScheduleSpec, seed: u64) -> FaultSchedule {
        let mut root = Rng::new(seed);
        let mut events = Vec::new();
        let classes = [
            (FaultKind::DeviceCrash, spec.devices, 0u64),
            (FaultKind::LinkFail, spec.links, 1u64),
            (FaultKind::EndpointCrash, spec.endpoints, 2u64),
        ];
        let horizon = spec.horizon.as_secs_f64();
        for (crash_kind, proc_, class_salt) in classes {
            if proc_.population == 0 || proc_.mttf_s <= 0.0 {
                continue;
            }
            let mttr = proc_.mttr_s.max(1e-3);
            for target in 0..proc_.population {
                let mut rng = root.split(class_salt << 32 | u64::from(target));
                let mut t = rng.exp(1.0 / proc_.mttf_s);
                while t < horizon {
                    let down = rng.exp(1.0 / mttr).max(1e-3);
                    let recover_kind = match crash_kind {
                        FaultKind::DeviceCrash => FaultKind::DeviceRecover,
                        FaultKind::LinkFail => FaultKind::LinkRestore,
                        _ => FaultKind::EndpointRecover,
                    };
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        kind: crash_kind,
                        target,
                    });
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t + down),
                        kind: recover_kind,
                        target,
                    });
                    t += down + rng.exp(1.0 / proc_.mttf_s);
                }
            }
        }
        FaultSchedule::from_events(events)
    }

    /// The events, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of crash (not recover) events.
    pub fn crashes(&self) -> usize {
        self.events.iter().filter(|e| e.kind.is_crash()).count()
    }

    /// Largest target index per kind pair, for population validation:
    /// `(max device, max link, max endpoint)`, `None` where the class is
    /// untouched.
    pub fn max_targets(&self) -> (Option<u32>, Option<u32>, Option<u32>) {
        let mut dev = None;
        let mut link = None;
        let mut ep = None;
        for e in &self.events {
            let slot = match e.kind {
                FaultKind::DeviceCrash | FaultKind::DeviceRecover => &mut dev,
                FaultKind::LinkFail | FaultKind::LinkRestore => &mut link,
                FaultKind::EndpointCrash | FaultKind::EndpointRecover => &mut ep,
            };
            *slot = Some(slot.map_or(e.target, |m: u32| m.max(e.target)));
        }
        (dev, link, ep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(devices: u32, links: u32) -> FaultScheduleSpec {
        FaultScheduleSpec {
            horizon: SimDuration::from_secs(100),
            devices: FaultProcess {
                population: devices,
                mttf_s: 20.0,
                mttr_s: 3.0,
            },
            links: FaultProcess {
                population: links,
                mttf_s: 30.0,
                mttr_s: 2.0,
            },
            endpoints: FaultProcess::OFF,
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultSchedule::generate(&spec(8, 4), 7);
        let b = FaultSchedule::generate(&spec(8, 4), 7);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(&spec(8, 4), 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_events_sorted_and_paired() {
        let s = FaultSchedule::generate(&spec(8, 4), 42);
        assert!(!s.is_empty());
        for w in s.events().windows(2) {
            assert!(w[0].at <= w[1].at, "unsorted schedule");
        }
        // Every crash has a later recover: per (kind-class, target), the
        // up/down transitions alternate and end "up".
        use std::collections::HashMap;
        let mut state: HashMap<(bool, bool, u32), bool> = HashMap::new();
        for e in s.events() {
            let class = (
                matches!(e.kind, FaultKind::DeviceCrash | FaultKind::DeviceRecover),
                matches!(e.kind, FaultKind::LinkFail | FaultKind::LinkRestore),
                e.target,
            );
            let down = state.entry(class).or_insert(false);
            if e.kind.is_crash() {
                assert!(!*down, "crash while already down: {e:?}");
            } else {
                assert!(*down, "recover while up: {e:?}");
            }
            *down = e.kind.is_crash();
        }
        assert!(
            state.values().all(|&down| !down),
            "some target never recovers"
        );
    }

    #[test]
    fn empty_spec_generates_nothing() {
        let s = FaultSchedule::generate(&FaultScheduleSpec::default(), 1);
        assert!(s.is_empty());
        assert_eq!(s.crashes(), 0);
        assert_eq!(s.max_targets(), (None, None, None));
    }

    #[test]
    fn push_keeps_sorted_and_stable() {
        let mut s = FaultSchedule::new();
        s.push(SimTime::from_secs(5), FaultKind::LinkFail, 1);
        s.push(SimTime::from_secs(1), FaultKind::DeviceCrash, 0);
        s.push(SimTime::from_secs(5), FaultKind::LinkRestore, 1);
        assert_eq!(s.events()[0].kind, FaultKind::DeviceCrash);
        // Equal timestamps keep insertion order.
        assert_eq!(s.events()[1].kind, FaultKind::LinkFail);
        assert_eq!(s.events()[2].kind, FaultKind::LinkRestore);
        assert_eq!(s.max_targets(), (Some(0), Some(1), None));
    }

    #[test]
    fn crash_and_recover_helper() {
        let mut s = FaultSchedule::new();
        s.crash_and_recover(
            FaultKind::EndpointCrash,
            3,
            SimTime::from_secs(2),
            SimDuration::from_secs(4),
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.crashes(), 1);
        assert_eq!(s.events()[1].at, SimTime::from_secs(6));
        assert_eq!(s.events()[1].kind, FaultKind::EndpointRecover);
    }

    #[test]
    fn serde_roundtrip() {
        let s = FaultSchedule::generate(&spec(3, 2), 9);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: FaultSchedule = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
