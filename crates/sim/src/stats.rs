//! Online and batch statistics used by the experiment harness.
//!
//! - [`OnlineStats`]: Welford's numerically stable running mean/variance.
//! - [`Percentiles`]: exact sample percentiles over a retained sample set
//!   (the experiment scales here are small enough that exactness beats a
//!   streaming sketch).
//! - [`Histogram`]: fixed-width binning for distribution shapes.
//! - [`TimeWeighted`]: time-weighted average of a step function (e.g.
//!   queue length or utilization over virtual time).
//! - [`jain_fairness`]: Jain's fairness index for load-balance experiments.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Welford running mean / variance / extrema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// A derived `Default` would zero `min`/`max`, disagreeing with `new()`'s
// ±INFINITY sentinels: a default-built accumulator would report
// `min() == 0.0` for all-positive samples and poison `merge()`.
impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Total of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over retained samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

// Derived `Default` would set `sorted: false` on an empty vec, disagreeing
// with `new()` (an empty sample set is vacuously sorted).
impl Default for Percentiles {
    fn default() -> Self {
        Self::new()
    }
}

impl Percentiles {
    /// Empty sample set.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by linear interpolation between
    /// closest ranks. Returns `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: (p50, p95, p99) tuple.
    pub fn p50_p95_p99(&mut self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let i = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[i.min(n - 1)] += 1;
        }
    }

    /// Counts per bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total observations including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Time-weighted average of a piecewise-constant signal over virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64,
    start: SimTime,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_t: SimTime::ZERO,
            last_v: 0.0,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
            started: false,
        }
    }

    /// Record that the signal changed to `v` at time `t`.
    ///
    /// Times must be non-decreasing.
    pub fn set(&mut self, t: SimTime, v: f64) {
        if !self.started {
            self.start = t;
            self.started = true;
        } else {
            debug_assert!(t >= self.last_t, "time went backwards");
            let dt = t.since(self.last_t).as_secs_f64();
            self.weighted_sum += self.last_v * dt;
        }
        self.last_t = t;
        self.last_v = v;
    }

    /// Time-weighted mean of the signal from the first `set` up to `end`.
    pub fn mean_until(&self, end: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let tail = end.since(self.last_t).as_secs_f64();
        let total = end.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_v;
        }
        (self.weighted_sum + self.last_v * tail) / total
    }
}

/// Jain's fairness index for a set of per-entity loads: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly balanced; `1/n` means one entity receives all load.
/// Returns 1.0 for an empty or all-zero input (vacuously fair).
pub fn jain_fairness(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let sumsq: f64 = loads.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (loads.len() as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that set is 4.571428...
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn default_matches_new() {
        // Regression: `OnlineStats::default()` once derived zeroed extrema,
        // so all-positive samples reported `min() == 0.0` and merging a
        // default-built accumulator dragged `min` down to 0.
        let mut d = OnlineStats::default();
        assert_eq!(d.min(), f64::INFINITY);
        assert_eq!(d.max(), f64::NEG_INFINITY);
        for x in [3.0, 5.0] {
            d.push(x);
        }
        assert_eq!(d.min(), 3.0);
        assert_eq!(d.max(), 5.0);

        let mut merged = OnlineStats::new();
        merged.push(3.0);
        merged.push(5.0);
        let mut into_default = OnlineStats::default();
        into_default.merge(&merged);
        assert_eq!(into_default.min(), 3.0);
        assert_eq!(into_default.max(), 5.0);

        // And `Percentiles::default()` must agree with `new()` on the
        // vacuously-sorted empty state.
        let mut p = Percentiles::default();
        assert_eq!(p.quantile(0.5), None);
        p.push(1.0);
        assert_eq!(p.quantile(0.5), Some(1.0));
    }

    #[test]
    fn percentiles_exact() {
        let mut p = Percentiles::new();
        for i in (1..=100).rev() {
            p.push(i as f64);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert!((p.median().unwrap() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
    }

    #[test]
    fn histogram_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0);
        assert_eq!(h.bins(), &[1; 10]);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 12);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(10), 3.0);
        // 10s at 1.0 then 10s at 3.0 -> mean 2.0 at t=20.
        let m = tw.mean_until(SimTime::from_secs(20));
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_starts_late() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(5), 4.0);
        let m = tw.mean_until(SimTime::from_secs(5) + SimDuration::from_secs(5));
        assert!((m - 4.0).abs() < 1e-12);
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[4.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
