//! The event calendar: a cancellable priority queue over virtual time.
//!
//! Events are ordered by `(time, sequence)` — the sequence number breaks
//! ties in insertion order, which makes simulations deterministic even when
//! many events share a timestamp. Cancellation is *lazy*: a cancelled event
//! stays in the heap and is skipped on pop, which keeps `cancel` O(1)
//! (amortized against the eventual pop).

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

struct Entry<E> {
    at: SimTime,
    id: EventId,
    payload: E,
}

// Min-heap ordering on (time, id) by inverting the comparison.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.id).cmp(&(self.at, self.id))
    }
}

/// A calendar of pending events of type `E`.
///
/// The calendar owns the simulation clock: popping an event advances `now`
/// to that event's timestamp. Scheduling into the past is a logic error and
/// panics in debug builds (it silently clamps to `now` in release builds,
/// which preserves causality).
///
/// ```
/// use continuum_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "timeout");
/// let cancelled = q.schedule_at(SimTime::from_secs(1), "never");
/// q.cancel(cancelled);
/// q.schedule_in(SimDuration::from_millis(500), "first");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(500), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "timeout")));
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.now(), SimTime::from_secs(2));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Entry { at, id, payload });
        id
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` to fire immediately (at the current time, after
    /// any events already scheduled for the current time).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancel a pending event. Returns `true` if the event was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Drop all pending events and reset the clock to zero.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a)); // already cancelled
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), "x");
        q.pop();
        q.schedule_in(SimDuration::from_secs(1), "y");
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn len_excludes_cancelled() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5)
            .map(|i| q.schedule_at(SimTime::from_secs(i), i))
            .collect();
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
    }
}
