//! The event calendar: a cancellable priority queue over virtual time.
//!
//! Events are ordered by `(time, key, sequence)`. The `key` is an optional
//! content-derived ordering class (zero for events scheduled with the plain
//! API, so existing callers keep exact insertion-order tie-breaks); the
//! sequence number breaks remaining ties in insertion order, which makes
//! simulations deterministic even when many events share a timestamp.
//! Keyed scheduling exists for the partitioned executor, where the *same*
//! logical event set must pop in the same relative order no matter how the
//! regions are grouped onto shards: a key computed from event content is
//! grouping-invariant where an insertion sequence is not.
//! Cancellation is O(1) and *lazy*: the
//! cancelled entry stays in the heap as a tombstone and is skipped on pop.
//!
//! Unlike a plain lazy-cancel design (a side `HashSet` of cancelled ids
//! that grows without bound under cancel/re-arm churn), live entries are
//! tracked through **generation-tagged slots**: each [`EventId`] packs a
//! slot index and that slot's generation, a cancel or pop bumps the
//! generation and recycles the slot, and heap entries whose (slot,
//! generation) no longer match are tombstones by construction. A
//! compaction pass rebuilds the heap whenever tombstones outnumber live
//! entries, so heap memory stays within 2x of the live event count no
//! matter how hot the cancel/re-schedule loop runs (the fault plane's
//! flow re-arm storm is exactly that loop).

use crate::time::{SimDuration, SimTime};
use continuum_obs::MetricsRegistry;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
///
/// Packs a recycled slot index (low 32 bits) and that slot's generation
/// (high 32 bits); ids therefore do not reflect scheduling order — the
/// queue keeps a separate monotone sequence for deterministic tie-breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> EventId {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    #[inline]
    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

struct Entry<E> {
    at: SimTime,
    /// Content-derived ordering class; zero for plain scheduling.
    key: u64,
    /// Monotone insertion sequence: equal-(time, key) events pop in
    /// schedule order.
    seq: u64,
    id: EventId,
    payload: E,
}

// Min-heap ordering on (time, key, seq) by inverting the comparison.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.key, other.seq).cmp(&(self.at, self.key, self.seq))
    }
}

/// One event slot: its current generation and whether that generation is
/// still pending in the heap.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    pending: bool,
}

/// Don't bother compacting tiny heaps: the rebuild would cost more than
/// the tombstones it reclaims.
const COMPACT_MIN_HEAP: usize = 64;

/// Lifetime counters of one calendar, harvested by the telemetry plane.
///
/// `scheduled`/`cancelled`/`compactions` are cumulative since
/// construction (they survive [`EventQueue::reset`]); `tombstones` is
/// the current heap-resident tombstone count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events cancelled while still pending.
    pub cancelled: u64,
    /// Tombstone-eviction passes run (automatic or explicit).
    pub compactions: u64,
    /// Tombstoned entries currently occupying heap memory.
    pub tombstones: usize,
}

/// A calendar of pending events of type `E`.
///
/// The calendar owns the simulation clock: popping an event advances `now`
/// to that event's timestamp. Scheduling into the past is a logic error and
/// panics in debug builds (it silently clamps to `now` in release builds,
/// which preserves causality).
///
/// ```
/// use continuum_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "timeout");
/// let cancelled = q.schedule_at(SimTime::from_secs(1), "never");
/// q.cancel(cancelled);
/// q.schedule_in(SimDuration::from_millis(500), "first");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(500), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "timeout")));
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.now(), SimTime::from_secs(2));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Generation per slot; heap entries with a stale generation are
    /// tombstones.
    slots: Vec<Slot>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Live (pending, non-cancelled) entry count.
    live: usize,
    next_seq: u64,
    now: SimTime,
    /// Lifetime schedule count (telemetry; plain counter, always on).
    scheduled: u64,
    /// Lifetime cancel count (telemetry).
    cancelled: u64,
    /// Lifetime compaction passes (telemetry).
    compactions: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
            cancelled: 0,
            compactions: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of tombstoned (cancelled or superseded) entries still
    /// occupying heap memory. Bounded: compaction runs whenever this
    /// exceeds the live count (and the heap is non-trivial).
    pub fn tombstones(&self) -> usize {
        self.stats().tombstones
    }

    /// Lifetime counters plus the current tombstone count — the record
    /// the telemetry plane harvests (see
    /// [`EventQueue::publish_metrics`]).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.scheduled,
            cancelled: self.cancelled,
            compactions: self.compactions,
            tombstones: self.heap.len() - self.live,
        }
    }

    /// Publish this calendar's counters into a metrics registry under
    /// `prefix` (e.g. `"executor.event_queue"`).
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        let s = self.stats();
        reg.record(&format!("{prefix}.scheduled"), s.scheduled);
        reg.record(&format!("{prefix}.cancelled"), s.cancelled);
        reg.record(&format!("{prefix}.compactions"), s.compactions);
        reg.set_gauge(&format!("{prefix}.tombstones"), s.tombstones as f64);
    }

    /// True if `id` refers to the live generation of its slot.
    #[inline]
    fn is_live(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot())
            .is_some_and(|s| s.pending && s.gen == id.gen())
    }

    /// Retire a live slot: bump its generation (invalidating the heap
    /// entry and the issued id) and recycle the index.
    #[inline]
    fn retire(&mut self, id: EventId) {
        let slot = &mut self.slots[id.slot()];
        slot.pending = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.slot() as u32);
        self.live -= 1;
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        self.schedule_keyed_at(at, 0, payload)
    }

    /// Schedule `payload` at absolute time `at` under an explicit ordering
    /// `key`: equal-time events pop in ascending key order before insertion
    /// order. Events scheduled with the plain API carry key zero and so
    /// sort ahead of every keyed event at the same timestamp.
    pub fn schedule_keyed_at(&mut self, at: SimTime, key: u64, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "event slots exhausted"
                );
                self.slots.push(Slot {
                    gen: 0,
                    pending: false,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize].pending = true;
        let id = EventId::new(slot, self.slots[slot as usize].gen);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            key,
            seq,
            id,
            payload,
        });
        self.live += 1;
        self.scheduled += 1;
        id
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` to fire immediately (at the current time, after
    /// any events already scheduled for the current time).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancel a pending event. Returns `true` if the event was still
    /// pending; cancelling an already-popped, already-cancelled, or
    /// unknown id is a no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.retire(id);
        self.cancelled += 1;
        self.maybe_compact();
        true
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_tombstones();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.retire(entry.id);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    fn skip_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.is_live(top.id) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Rebuild the heap without its tombstones when they outnumber the
    /// live entries. O(live) and amortized against the cancels that
    /// created the tombstones, so the heap never holds more than ~2x the
    /// live events between passes.
    fn maybe_compact(&mut self) {
        if self.heap.len() >= COMPACT_MIN_HEAP && self.tombstones() * 2 > self.heap.len() {
            self.compact();
        }
    }

    /// Drop every tombstoned entry from the heap right now. Usually not
    /// needed — [`EventQueue::cancel`] compacts automatically past a
    /// tombstone threshold — but callers about to idle a long-lived queue
    /// can force the memory back.
    pub fn compact(&mut self) {
        self.compactions += 1;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| {
            let s = &self.slots[e.id.slot()];
            s.pending && s.gen == e.id.gen()
        });
        debug_assert_eq!(entries.len(), self.live);
        self.heap = BinaryHeap::from(entries);
    }

    /// Drop all pending events and reset the clock to zero.
    ///
    /// Ids issued before the reset are invalidated (their slots'
    /// generations advance), so a stale id can neither cancel nor alias a
    /// post-reset event.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.pending {
                s.pending = false;
                s.gen = s.gen.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        self.live = 0;
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_in_insertion_order_across_slot_reuse() {
        // Recycled slots must not disturb tie order: ids are reused, the
        // sequence number is not.
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), 0);
        q.cancel(a);
        let t = SimTime::from_secs(1);
        for i in 1..6 {
            // Each cancel recycles the slot the next schedule claims.
            let id = q.schedule_at(t, i);
            assert_eq!(id.slot(), 0, "slot not recycled");
            if i < 5 {
                q.cancel(id);
            }
        }
        for i in 6..9 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![5, 6, 7, 8]);
    }

    #[test]
    fn keyed_ties_break_by_key_then_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule_keyed_at(t, 9, "k9");
        q.schedule_keyed_at(t, 3, "k3-first");
        q.schedule_at(t, "plain"); // key 0: ahead of every keyed event
        q.schedule_keyed_at(t, 3, "k3-second");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["plain", "k3-first", "k3-second", "k9"]);
    }

    #[test]
    fn keyed_order_is_insertion_invariant() {
        // The property the partitioned executor relies on: the pop order
        // of a keyed event set does not depend on schedule order.
        let mut fwd = EventQueue::new();
        let mut rev = EventQueue::new();
        let t = SimTime::from_secs(2);
        let keys = [7u64, 1, 5, 3, 2];
        for &k in &keys {
            fwd.schedule_keyed_at(t, k, k);
        }
        for &k in keys.iter().rev() {
            rev.schedule_keyed_at(t, k, k);
        }
        let a: Vec<_> = std::iter::from_fn(|| fwd.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rev.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a)); // already cancelled
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_popped_event_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        // The seed calendar quietly tombstoned this id and under-counted
        // len() forever after; now it is a detected no-op.
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = EventQueue::new();
        let stale = q.schedule_at(SimTime::from_secs(4), "x");
        q.pop();
        let stale2 = q.schedule_in(SimDuration::from_secs(1), "y");
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        // Pre-reset ids cannot cancel post-reset events.
        let z = q.schedule_at(SimTime::from_secs(1), "z");
        assert!(!q.cancel(stale));
        assert!(!q.cancel(stale2));
        assert!(q.cancel(z));
    }

    #[test]
    fn len_excludes_cancelled() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5)
            .map(|i| q.schedule_at(SimTime::from_secs(i), i))
            .collect();
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn compaction_bounds_tombstones() {
        // A cancel/re-arm storm: one long-lived event plus thousands of
        // scheduled-then-cancelled ones. The seed calendar kept every
        // tombstone in the heap until its timestamp; the compacting
        // calendar keeps the heap within 2x of live.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1_000_000), u64::MAX);
        for i in 0..10_000u64 {
            let id = q.schedule_at(SimTime::from_secs(2_000_000 + i), i);
            q.cancel(id);
            assert!(
                q.tombstones() <= COMPACT_MIN_HEAP.max(2 * q.len()),
                "tombstones unbounded: {} at live {}",
                q.tombstones(),
                q.len()
            );
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        assert!(q.pop().is_none());
    }

    #[test]
    fn stats_track_lifetime_counters() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100)
            .map(|i| q.schedule_at(SimTime::from_secs(i), i))
            .collect();
        for id in &ids[..80] {
            q.cancel(*id);
        }
        let s = q.stats();
        assert_eq!(s.scheduled, 100);
        assert_eq!(s.cancelled, 80);
        assert!(s.compactions >= 1, "cancel storm must have compacted");
        assert_eq!(
            s.tombstones,
            q.tombstones(),
            "accessor stays a thin wrapper"
        );
        // Counters survive reset (they are lifetime totals).
        q.reset();
        assert_eq!(q.stats().scheduled, 100);

        let reg = continuum_obs::MetricsRegistry::new();
        q.publish_metrics(&reg, "q");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("q.scheduled"), 100);
        assert_eq!(snap.counter("q.cancelled"), 80);
        assert!(snap.counter("q.compactions") >= 1);
        assert_eq!(snap.gauge("q.tombstones"), Some(0.0));
    }

    #[test]
    fn explicit_compact_drops_all_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule_at(SimTime::from_secs(i), i))
            .collect();
        for id in &ids[..5] {
            q.cancel(*id);
        }
        q.compact();
        assert_eq!(q.tombstones(), 0);
        assert_eq!(q.len(), 5);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![5, 6, 7, 8, 9]);
    }
}
