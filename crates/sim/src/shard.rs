//! Conservative parallel shard driver.
//!
//! Splits a simulation into shards, each owning its own event calendar
//! and state, and advances them in bounded time windows: every shard may
//! safely process all events strictly before `next + lookahead`, where
//! `next` is the earliest pending event (or undelivered message) across
//! the whole simulation and `lookahead` is the minimum latency of any
//! cross-shard interaction. Messages a shard emits while processing a
//! window are therefore always stamped at or after the window's horizon,
//! so exchanging them at the barrier between windows can never deliver an
//! event into a shard's past — the classic conservative (CMB-style)
//! synchronization argument, with the barrier playing the role of the
//! null messages.
//!
//! Determinism: within a window each shard runs single-threaded over its
//! own calendar, and the inter-window exchange sorts envelopes by
//! `(time, sender, sender-sequence)` before delivery. Neither depends on
//! thread scheduling, so a parallel run is bit-identical to a serial run
//! of the same shards — `parallel` is purely a wall-clock knob.

use crate::time::{SimDuration, SimTime};
use rayon::prelude::*;

/// A cross-shard message: payload `msg` must be applied to shard `to` at
/// virtual time `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Virtual time the message takes effect at the receiver.
    pub at: SimTime,
    /// Sending shard index.
    pub from: u32,
    /// Sender-local monotone sequence, the final delivery tie-break:
    /// envelopes are handed to the receiver sorted by `(at, from, seq)`.
    pub seq: u64,
    /// Receiving shard index.
    pub to: u32,
    /// The payload.
    pub msg: M,
}

/// One shard of a partitioned simulation.
pub trait ShardModel: Send {
    /// Cross-shard message payload. Use `()` for shards that never
    /// interact (fully independent partitions).
    type Msg: Send;

    /// Time of this shard's earliest pending event, or `None` if its
    /// calendar is empty.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Deliver `inbox` (sorted by `(at, from, seq)`; every envelope
    /// satisfies `at < horizon`), then process all local events strictly
    /// before `horizon` (all events when `None`). Returns the envelopes
    /// this window produced for other shards; each must be stamped no
    /// earlier than the emitting event plus the partition's lookahead.
    fn advance(
        &mut self,
        horizon: Option<SimTime>,
        inbox: Vec<Envelope<Self::Msg>>,
    ) -> Vec<Envelope<Self::Msg>>;
}

/// Counters from a conservative run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Barrier windows executed.
    pub windows: u64,
    /// Cross-shard envelopes delivered.
    pub messages: u64,
    /// Envelopes delivered *to* each shard, for load-imbalance telemetry.
    pub per_shard_messages: Vec<u64>,
}

/// How far past the global minimum each shard may safely run.
#[derive(Debug, Clone)]
pub enum Lookahead {
    /// Shards never exchange messages: each runs to its cap (or to
    /// completion) in a single window. Emitting an envelope under this
    /// policy panics — nothing could deliver it safely.
    None,
    /// One global minimum cross-shard latency: every shard's horizon is
    /// `next + lookahead`.
    Uniform(SimDuration),
    /// Per-shard incoming latency (see
    /// `RegionPartition::incoming_lookahead` in `continuum-net`): shard
    /// `s` runs to `next + per_shard[s]`. Safe because an envelope
    /// emitted at `t >= next` toward shard `s` crosses a boundary link
    /// into `s` and is stamped at least that link's latency later, which
    /// is at least `per_shard[s]`.
    PerShard(Vec<SimDuration>),
}

impl Lookahead {
    fn horizon(&self, shard: usize, next: SimTime, cap: Option<SimTime>) -> Option<SimTime> {
        let h = match self {
            Lookahead::None => None,
            Lookahead::Uniform(l) => Some(next + *l),
            Lookahead::PerShard(per) => Some(next + per[shard]),
        };
        match (h, cap) {
            (Some(h), Some(c)) => Some(h.min(c)),
            (h, None) => h,
            (None, c) => c,
        }
    }

    fn exchanges_messages(&self) -> bool {
        !matches!(self, Lookahead::None)
    }
}

/// A resumable conservative shard executor.
///
/// [`run_conservative`] wraps this for the run-to-completion case; the
/// open-loop sharded driver in `continuum-runtime` instead alternates
/// [`ConservativeDriver::advance_until`] with request injection, pumping
/// windows only as far as the next arrival.
pub struct ConservativeDriver<S: ShardModel> {
    shards: Vec<S>,
    pending: Vec<Envelope<S::Msg>>,
    lookahead: Lookahead,
    parallel: bool,
    stats: WindowStats,
}

impl<S: ShardModel> ConservativeDriver<S> {
    /// Wrap `shards` for windowed execution under `lookahead`.
    pub fn new(shards: Vec<S>, lookahead: Lookahead, parallel: bool) -> Self {
        let stats = WindowStats {
            per_shard_messages: vec![0; shards.len()],
            ..WindowStats::default()
        };
        ConservativeDriver {
            shards,
            pending: Vec::new(),
            lookahead,
            parallel,
            stats,
        }
    }

    /// The shards, for injection and inspection between windows.
    pub fn shards_mut(&mut self) -> &mut [S] {
        &mut self.shards
    }

    /// Earliest pending event or undelivered envelope across the whole
    /// simulation; `None` when fully drained.
    pub fn next_time(&mut self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for s in &mut self.shards {
            next = min_opt(next, s.next_event_time());
        }
        for e in &self.pending {
            next = min_opt(next, Some(e.at));
        }
        next
    }

    /// Process one barrier window, bounded by `cap` (exclusive) when
    /// given. Returns `false` — without advancing anything — once no
    /// event remains before the cap.
    pub fn step_window(&mut self, cap: Option<SimTime>) -> bool {
        let Some(next) = self.next_time() else {
            return false;
        };
        if cap.is_some_and(|c| next >= c) {
            return false;
        }
        // Deliver every envelope inside its receiver's window, sorted by
        // (at, from, seq) so receivers see a deterministic order. (The
        // partitioned executor additionally orders by content-derived
        // event keys on its own calendar, making even this order
        // immaterial to outcomes; the sort keeps plain ShardModels
        // deterministic on their own.)
        let mut inboxes: Vec<Vec<Envelope<S::Msg>>> = Vec::new();
        inboxes.resize_with(self.shards.len(), Vec::new);
        let mut keep: Vec<Envelope<S::Msg>> = Vec::new();
        let mut deliver: Vec<Envelope<S::Msg>> = Vec::new();
        for e in std::mem::take(&mut self.pending) {
            let h = self.lookahead.horizon(e.to as usize, next, cap);
            if h.is_none_or(|h| e.at < h) {
                deliver.push(e);
            } else {
                keep.push(e);
            }
        }
        self.pending = keep;
        deliver.sort_by_key(|e| (e.at, e.from, e.seq));
        self.stats.messages += deliver.len() as u64;
        for e in deliver {
            let to = e.to as usize;
            assert!(to < inboxes.len(), "envelope addressed to unknown shard");
            self.stats.per_shard_messages[to] += 1;
            inboxes[to].push(e);
        }
        // Advance every shard to its horizon. Ownership round-trips
        // through the iterator so the parallel and serial paths share one
        // shape; results come back in input order either way.
        let lookahead = &self.lookahead;
        #[allow(clippy::type_complexity)]
        let work: Vec<(usize, S, Vec<Envelope<S::Msg>>)> = self
            .shards
            .drain(..)
            .zip(inboxes)
            .enumerate()
            .map(|(i, (s, inbox))| (i, s, inbox))
            .collect();
        let advanced: Vec<(S, Vec<Envelope<S::Msg>>)> = if self.parallel {
            work.into_par_iter()
                .map(|(i, mut s, inbox)| {
                    let out = s.advance(lookahead.horizon(i, next, cap), inbox);
                    (s, out)
                })
                .collect()
        } else {
            work.into_iter()
                .map(|(i, mut s, inbox)| {
                    let out = s.advance(lookahead.horizon(i, next, cap), inbox);
                    (s, out)
                })
                .collect()
        };
        for (s, out) in advanced {
            assert!(
                self.lookahead.exchanges_messages() || out.is_empty(),
                "shards that exchange messages need a lookahead"
            );
            self.pending.extend(out);
            self.shards.push(s);
        }
        self.stats.windows += 1;
        true
    }

    /// Pump windows until every event strictly before `cap` is processed.
    pub fn advance_until(&mut self, cap: SimTime) {
        while self.step_window(Some(cap)) {}
    }

    /// Pump windows until the whole simulation drains.
    pub fn run(&mut self) {
        while self.step_window(None) {}
    }

    /// Counters so far.
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }

    /// Tear down into the shards and final counters.
    pub fn into_parts(self) -> (Vec<S>, WindowStats) {
        assert!(self.pending.is_empty(), "undelivered envelopes at teardown");
        (self.shards, self.stats)
    }
}

/// Advance `shards` to completion under conservative synchronization and
/// hand them back along with window statistics.
///
/// `lookahead` is the minimum virtual-time distance of any cross-shard
/// interaction (for a region partition: the minimum boundary-link
/// latency). Pass `None` for shards that never exchange messages — the
/// driver then runs each shard to completion in a single window (and
/// panics if a shard emits an envelope anyway, since nothing could
/// deliver it safely).
///
/// With `parallel` set, shards within a window advance on worker threads;
/// the result is bit-identical to the serial run (see module docs).
pub fn run_conservative<S: ShardModel>(
    shards: Vec<S>,
    lookahead: Option<SimDuration>,
    parallel: bool,
) -> (Vec<S>, WindowStats) {
    let la = match lookahead {
        Some(l) => Lookahead::Uniform(l),
        None => Lookahead::None,
    };
    let mut driver = ConservativeDriver::new(shards, la, parallel);
    driver.run();
    driver.into_parts()
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    /// Toy shard: pops timestamped hop counters and volleys them to a
    /// peer after `delay`.
    struct Pinger {
        id: u32,
        peer: u32,
        queue: EventQueue<u64>,
        delay: SimDuration,
        max_hops: u64,
        seq: u64,
        log: Vec<(SimTime, u64)>,
    }

    impl Pinger {
        fn new(id: u32, peer: u32, delay: SimDuration, max_hops: u64) -> Self {
            Pinger {
                id,
                peer,
                queue: EventQueue::new(),
                delay,
                max_hops,
                seq: 0,
                log: Vec::new(),
            }
        }
    }

    impl ShardModel for Pinger {
        type Msg = u64;

        fn next_event_time(&mut self) -> Option<SimTime> {
            self.queue.peek_time()
        }

        fn advance(
            &mut self,
            horizon: Option<SimTime>,
            inbox: Vec<Envelope<u64>>,
        ) -> Vec<Envelope<u64>> {
            for e in inbox {
                self.queue.schedule_at(e.at, e.msg);
            }
            let mut out = Vec::new();
            while let Some(t) = self.queue.peek_time() {
                if horizon.is_some_and(|h| t >= h) {
                    break;
                }
                let (now, hops) = self.queue.pop().expect("peeked");
                self.log.push((now, hops));
                if hops < self.max_hops {
                    out.push(Envelope {
                        at: now + self.delay,
                        from: self.id,
                        seq: self.seq,
                        to: self.peer,
                        msg: hops + 1,
                    });
                    self.seq += 1;
                }
            }
            out
        }
    }

    fn ping_pong(parallel: bool) -> (Vec<Pinger>, WindowStats) {
        let delay = SimDuration::from_millis(10);
        let mut a = Pinger::new(0, 1, delay, 8);
        let b = Pinger::new(1, 0, delay, 8);
        a.queue.schedule_at(SimTime::ZERO, 0);
        run_conservative(vec![a, b], Some(delay), parallel)
    }

    #[test]
    fn ping_pong_crosses_shards_in_windows() {
        let (shards, stats) = ping_pong(false);
        // 9 hops total (0..=8), alternating shards at 10 ms intervals.
        let total: usize = shards.iter().map(|s| s.log.len()).sum();
        assert_eq!(total, 9);
        for s in &shards {
            for &(t, hops) in &s.log {
                assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(10 * hops));
                assert_eq!(hops % 2, u64::from(s.id));
            }
        }
        assert!(stats.windows >= 9, "each hop needs its own window");
        assert_eq!(stats.messages, 8);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let (serial, s_stats) = ping_pong(false);
        let (par, p_stats) = ping_pong(true);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.log, b.log);
        }
        assert_eq!(s_stats, p_stats);
    }

    #[test]
    fn no_lookahead_runs_independent_shards_in_one_window() {
        let delay = SimDuration::from_millis(1);
        // max_hops 0: each shard pops its seed event and stays silent.
        let mut a = Pinger::new(0, 1, delay, 0);
        let mut b = Pinger::new(1, 0, delay, 0);
        a.queue.schedule_at(SimTime::from_secs(1), 0);
        b.queue.schedule_at(SimTime::from_secs(2), 0);
        let (shards, stats) = run_conservative(vec![a, b], None, false);
        assert_eq!(stats.windows, 1);
        assert_eq!(stats.messages, 0);
        assert_eq!(shards[0].log, vec![(SimTime::from_secs(1), 0)]);
        assert_eq!(shards[1].log, vec![(SimTime::from_secs(2), 0)]);
    }

    #[test]
    #[should_panic(expected = "need a lookahead")]
    fn messaging_without_lookahead_is_rejected() {
        let delay = SimDuration::from_millis(1);
        let mut a = Pinger::new(0, 1, delay, 8);
        let b = Pinger::new(1, 0, delay, 8);
        a.queue.schedule_at(SimTime::ZERO, 0);
        run_conservative(vec![a, b], None, false);
    }

    #[test]
    fn same_time_messages_deliver_in_sender_order() {
        /// Collector shard that logs payloads in delivery order.
        struct Sink {
            log: Vec<u64>,
            queue: EventQueue<u64>,
        }
        impl ShardModel for Sink {
            type Msg = u64;
            fn next_event_time(&mut self) -> Option<SimTime> {
                self.queue.peek_time()
            }
            fn advance(
                &mut self,
                horizon: Option<SimTime>,
                inbox: Vec<Envelope<u64>>,
            ) -> Vec<Envelope<u64>> {
                for e in inbox {
                    self.queue.schedule_at(e.at, e.msg);
                }
                while let Some(t) = self.queue.peek_time() {
                    if horizon.is_some_and(|h| t >= h) {
                        break;
                    }
                    let (_, v) = self.queue.pop().expect("peeked");
                    self.log.push(v);
                }
                Vec::new()
            }
        }
        /// Emitter that fires one envelope to shard 0, then goes quiet.
        struct Emitter {
            id: u32,
            fired: bool,
            payload: u64,
        }
        impl ShardModel for Emitter {
            type Msg = u64;
            fn next_event_time(&mut self) -> Option<SimTime> {
                (!self.fired).then_some(SimTime::ZERO)
            }
            fn advance(
                &mut self,
                _horizon: Option<SimTime>,
                _inbox: Vec<Envelope<u64>>,
            ) -> Vec<Envelope<u64>> {
                if self.fired {
                    return Vec::new();
                }
                self.fired = true;
                vec![Envelope {
                    at: SimTime::from_secs(1),
                    from: self.id,
                    seq: 0,
                    to: 0,
                    msg: self.payload,
                }]
            }
        }
        // Heterogeneous shards via trait objects are overkill here; wrap
        // in an enum instead.
        enum Either {
            Sink(Sink),
            Emit(Emitter),
        }
        impl ShardModel for Either {
            type Msg = u64;
            fn next_event_time(&mut self) -> Option<SimTime> {
                match self {
                    Either::Sink(s) => s.next_event_time(),
                    Either::Emit(e) => e.next_event_time(),
                }
            }
            fn advance(
                &mut self,
                horizon: Option<SimTime>,
                inbox: Vec<Envelope<u64>>,
            ) -> Vec<Envelope<u64>> {
                match self {
                    Either::Sink(s) => s.advance(horizon, inbox),
                    Either::Emit(e) => e.advance(horizon, inbox),
                }
            }
        }
        // Emitters 2 and 1 both deliver at t=1s; sorted delivery hands
        // shard 1's payload over first even though shard 2 precedes it in
        // no ordering except its index.
        let shards = vec![
            Either::Sink(Sink {
                log: Vec::new(),
                queue: EventQueue::new(),
            }),
            Either::Emit(Emitter {
                id: 1,
                fired: false,
                payload: 111,
            }),
            Either::Emit(Emitter {
                id: 2,
                fired: false,
                payload: 222,
            }),
        ];
        let (shards, stats) = run_conservative(shards, Some(SimDuration::from_millis(100)), false);
        let Either::Sink(sink) = &shards[0] else {
            panic!("shard 0 is the sink");
        };
        assert_eq!(sink.log, vec![111, 222]);
        assert_eq!(stats.messages, 2);
    }
}
