//! Deterministic pseudo-random number generation and distributions.
//!
//! The simulator carries its own small PRNG (xoshiro256\*\*, seeded through
//! SplitMix64) so that a `(seed, workload)` pair reproduces bit-identical
//! results regardless of the version of any external `rand` crate. The
//! distributions implemented here are the ones the workload generators and
//! network models need: uniform, exponential, normal, log-normal, Pareto,
//! and Zipf.

use serde::{Deserialize, Serialize};

/// SplitMix64 step used to expand a single `u64` seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* deterministic PRNG.
///
/// Fast, high-quality, and trivially serializable; the canonical generator
/// recommended by its authors for general simulation use.
///
/// ```
/// use continuum_sim::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let sample = a.exp(2.0);                // exponential variate, rate 2
/// assert!(sample >= 0.0);
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator (for stream splitting).
    ///
    /// Mixing the parent's next output with a stream index gives distinct,
    /// decorrelated child streams for e.g. per-task noise.
    pub fn split(&mut self, stream: u64) -> Rng {
        let base = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng::new(base)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Widening multiply; rejection to remove modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -u.ln() / rate
    }

    /// Standard normal variate (Box–Muller, one value per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        let u1 = 1.0 - self.f64(); // (0,1]
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal variate parameterized by the mean/σ of the underlying
    /// normal distribution.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        let u = 1.0 - self.f64();
        x_min / u.powf(1.0 / alpha)
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s >= 0`.
    ///
    /// Uses inversion on the precomputable harmonic weights when `n` is
    /// small, falling back to on-the-fly CDF walking; O(n) worst case, which
    /// is fine for the catalog sizes the generators use.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.f64() * h;
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            if u < w {
                return k - 1;
            }
            u -= w;
        }
        n - 1
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: first k slots.
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_unbiased_small() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000; loose 5-sigma-ish bound.
            assert!((8_500..11_500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(13);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pareto_lower_bound() {
        let mut r = Rng::new(17);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_rank_zero_most_common() {
        let mut r = Rng::new(19);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[r.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > counts[9], "{counts:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(29);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20);
        assert!(d.iter().all(|&i| i < 50));
    }

    #[test]
    fn split_streams_decorrelated() {
        let mut parent = Rng::new(5);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
