//! Device classes and per-device specifications.
//!
//! A *device* is a compute resource attached to one node of the network
//! topology. Its spec captures the handful of properties the placement
//! engine and the executors need: sustained compute speed, core count,
//! memory, power draw, and billing rates.

use continuum_net::Tier;
use continuum_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The broad hardware classes of the continuum (table T1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Battery-powered instrument or camera node.
    SensorMote,
    /// Microcontroller-class gateway (Cortex-M).
    Microcontroller,
    /// Single-board edge gateway (Raspberry-Pi class).
    EdgeGateway,
    /// Metro/fog rack server (Xeon-D class).
    FogServer,
    /// General-purpose cloud VM.
    CloudVm,
    /// Large compute-optimized cloud VM.
    CloudVmLarge,
    /// Supercomputer node (CPU + accelerators).
    HpcNode,
    /// Discrete GPU accelerator appliance.
    GpuAccelerator,
}

impl DeviceClass {
    /// All classes, small to large.
    pub const ALL: [DeviceClass; 8] = [
        DeviceClass::SensorMote,
        DeviceClass::Microcontroller,
        DeviceClass::EdgeGateway,
        DeviceClass::FogServer,
        DeviceClass::CloudVm,
        DeviceClass::CloudVmLarge,
        DeviceClass::HpcNode,
        DeviceClass::GpuAccelerator,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::SensorMote => "sensor-mote",
            DeviceClass::Microcontroller => "microcontroller",
            DeviceClass::EdgeGateway => "edge-gateway",
            DeviceClass::FogServer => "fog-server",
            DeviceClass::CloudVm => "cloud-vm",
            DeviceClass::CloudVmLarge => "cloud-vm-large",
            DeviceClass::HpcNode => "hpc-node",
            DeviceClass::GpuAccelerator => "gpu-accelerator",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Hardware class.
    pub class: DeviceClass,
    /// Continuum tier this class normally sits in.
    pub tier: Tier,
    /// Number of independent task slots (cores).
    pub cores: u32,
    /// Sustained aggregate compute speed, flop/s (all cores together).
    pub flops: f64,
    /// Installed memory, bytes.
    pub mem_bytes: u64,
    /// Power draw when idle, watts.
    pub idle_watts: f64,
    /// Power draw when all cores are busy, watts.
    pub busy_watts: f64,
    /// Billing rate, US dollars per hour of occupancy (0 for owned gear).
    pub usd_per_hour: f64,
    /// Data egress price, US dollars per GB leaving this device's site.
    pub egress_usd_per_gb: f64,
}

impl DeviceSpec {
    /// Compute speed available to one task occupying one core.
    pub fn flops_per_core(&self) -> f64 {
        self.flops / self.cores as f64
    }

    /// Time for one single-core task of `work` flops.
    ///
    /// # Panics
    /// If `work` is negative.
    pub fn compute_time(&self, work: f64) -> SimDuration {
        assert!(work >= 0.0, "negative work");
        SimDuration::from_secs_f64(work / self.flops_per_core())
    }

    /// Time for a task of `work` flops using up to `parallelism` cores,
    /// clamped to the device's core count (perfect intra-task scaling is
    /// assumed up to the clamp — an intentional simplification noted in
    /// DESIGN.md).
    pub fn compute_time_parallel(&self, work: f64, parallelism: u32) -> SimDuration {
        let p = parallelism.clamp(1, self.cores);
        SimDuration::from_secs_f64(work / (self.flops_per_core() * p as f64))
    }

    /// Marginal power of keeping one core busy, watts.
    pub fn watts_per_busy_core(&self) -> f64 {
        (self.busy_watts - self.idle_watts) / self.cores as f64
    }
}

/// A device instance placed at a topology node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Index within the owning [`crate::fleet::Fleet`].
    pub id: DeviceId,
    /// Topology node this device is attached to.
    pub node: continuum_net::NodeId,
    /// Static specification.
    pub spec: DeviceSpec,
}

/// Index of a device within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn compute_time_scales_with_work() {
        let spec = catalog::spec(DeviceClass::EdgeGateway);
        let t1 = spec.compute_time(1e9);
        let t2 = spec.compute_time(2e9);
        // Nanosecond ceil-rounding allows a couple of ns of slack.
        assert!((t2.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_clamps_to_cores() {
        let spec = catalog::spec(DeviceClass::EdgeGateway);
        let serial = spec.compute_time(1e9);
        let max_par = spec.compute_time_parallel(1e9, u32::MAX);
        assert!((serial.as_secs_f64() / max_par.as_secs_f64() - spec.cores as f64).abs() < 1e-6);
        // parallelism=1 equals the serial time.
        assert_eq!(spec.compute_time_parallel(1e9, 1), serial);
    }

    #[test]
    fn busy_core_power_positive() {
        for c in DeviceClass::ALL {
            let s = catalog::spec(c);
            assert!(s.watts_per_busy_core() > 0.0, "{c}");
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = DeviceClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DeviceClass::ALL.len());
    }
}
