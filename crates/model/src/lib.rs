//! # continuum-model
//!
//! Resource substrate for the `coding-the-continuum` reproduction: the
//! device classes that populate the continuum (sensor motes through HPC
//! nodes), the fleets deployed onto network topologies, and the energy and
//! dollar-cost models the multi-objective experiments optimize against.
//!
//! This crate substitutes for the physical hardware fleet the keynote's
//! experiments would need. The catalog ([`catalog::all`], table T1) uses
//! order-of-magnitude 2019 figures; experiments depend on the *ratios*
//! between classes, which are realistic, not on absolute numbers.

#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod device;
pub mod dvfs;
pub mod energy;
pub mod fleet;

pub use cost::{CostMeter, BYTES_PER_GB};
pub use device::{Device, DeviceClass, DeviceId, DeviceSpec};
pub use dvfs::{fleet_at_frequency, relative_energy_per_flop, spec_at_frequency};
pub use energy::EnergyMeter;
pub use fleet::{standard_fleet, Fleet};
