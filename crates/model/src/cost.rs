//! Dollar-cost accounting: occupancy billing plus egress charges.
//!
//! Cloud devices bill per-second at `usd_per_hour / 3600` while occupied by
//! tasks; bytes leaving a billing device's site are charged at
//! `egress_usd_per_gb`. Owned gear (sensors, edge, fog, HPC allocations)
//! has zero rates in the catalog, so the same meter works fleet-wide.

use crate::device::DeviceId;
use crate::fleet::Fleet;
use continuum_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of bytes in a (decimal) gigabyte, the billing unit.
pub const BYTES_PER_GB: f64 = 1e9;

/// Accumulates dollar costs per device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostMeter {
    occupancy_usd: Vec<f64>,
    egress_usd: Vec<f64>,
}

impl CostMeter {
    /// Meter sized for a fleet.
    pub fn new(fleet: &Fleet) -> Self {
        CostMeter {
            occupancy_usd: vec![0.0; fleet.len()],
            egress_usd: vec![0.0; fleet.len()],
        }
    }

    /// Record `cores` cores of `device` occupied for `dur`.
    ///
    /// Billing is per core-second: occupying 1 of 16 cores for an hour
    /// costs 1/16 of the hourly rate.
    pub fn record_occupancy(
        &mut self,
        fleet: &Fleet,
        device: DeviceId,
        cores: u32,
        dur: SimDuration,
    ) {
        let spec = &fleet.device(device).spec;
        let core_hours = cores as f64 * dur.as_secs_f64() / 3600.0;
        self.occupancy_usd[device.0 as usize] += spec.usd_per_hour * core_hours / spec.cores as f64;
    }

    /// Record `bytes` leaving `device`'s site.
    pub fn record_egress(&mut self, fleet: &Fleet, device: DeviceId, bytes: u64) {
        let spec = &fleet.device(device).spec;
        self.egress_usd[device.0 as usize] += spec.egress_usd_per_gb * bytes as f64 / BYTES_PER_GB;
    }

    /// Fold another meter for the same fleet into this one, device by
    /// device. Used when merging per-shard runs: each device bills in
    /// exactly one shard, so for every index one operand is 0.0 and the
    /// elementwise add is bit-exact.
    ///
    /// # Panics
    /// If the meters were sized for different fleets.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.occupancy_usd.len(),
            other.occupancy_usd.len(),
            "merging cost meters of different fleets"
        );
        for (a, b) in self.occupancy_usd.iter_mut().zip(&other.occupancy_usd) {
            *a += b;
        }
        for (a, b) in self.egress_usd.iter_mut().zip(&other.egress_usd) {
            *a += b;
        }
    }

    /// Occupancy dollars of one device.
    pub fn occupancy_usd(&self, device: DeviceId) -> f64 {
        self.occupancy_usd[device.0 as usize]
    }

    /// Egress dollars of one device.
    pub fn egress_usd(&self, device: DeviceId) -> f64 {
        self.egress_usd[device.0 as usize]
    }

    /// Total dollars across the fleet.
    pub fn total_usd(&self) -> f64 {
        self.occupancy_usd.iter().sum::<f64>() + self.egress_usd.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use continuum_net::{Tier, Topology};

    #[test]
    fn full_device_hour_bills_hourly_rate() {
        let mut topo = Topology::new();
        let n = topo.add_node("c", Tier::Cloud);
        let mut fleet = Fleet::new();
        let d = fleet.add_class(n, DeviceClass::CloudVm);
        let spec = fleet.device(d).spec.clone();
        let mut m = CostMeter::new(&fleet);
        m.record_occupancy(&fleet, d, spec.cores, SimDuration::from_secs(3600));
        assert!((m.occupancy_usd(d) - spec.usd_per_hour).abs() < 1e-9);
    }

    #[test]
    fn egress_bills_per_gb() {
        let mut topo = Topology::new();
        let n = topo.add_node("c", Tier::Cloud);
        let mut fleet = Fleet::new();
        let d = fleet.add_class(n, DeviceClass::CloudVm);
        let mut m = CostMeter::new(&fleet);
        m.record_egress(&fleet, d, 2_000_000_000);
        assert!((m.egress_usd(d) - 0.18).abs() < 1e-9);
    }

    #[test]
    fn owned_gear_is_free() {
        let mut topo = Topology::new();
        let n = topo.add_node("e", Tier::Edge);
        let mut fleet = Fleet::new();
        let d = fleet.add_class(n, DeviceClass::EdgeGateway);
        let mut m = CostMeter::new(&fleet);
        m.record_occupancy(&fleet, d, 4, SimDuration::from_secs(36_000));
        m.record_egress(&fleet, d, u32::MAX as u64);
        assert_eq!(m.total_usd(), 0.0);
    }
}
