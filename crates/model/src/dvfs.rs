//! Dynamic voltage/frequency scaling (DVFS).
//!
//! The standard first-order model: running a core at relative frequency
//! `f ∈ (0, 1]` scales its throughput by `f` and its *dynamic* power by
//! `f³` (frequency × voltage², with voltage tracking frequency); idle
//! (static) power is unchanged. Scaling down therefore reduces energy per
//! flop quadratically while stretching the makespan — until static power
//! integrated over the longer run wins, which is what experiment F10
//! measures.

use crate::device::DeviceSpec;
use crate::fleet::Fleet;

/// A device spec re-rated at relative frequency `f`.
///
/// # Panics
/// If `f` is not in `(0, 1]`.
pub fn spec_at_frequency(spec: &DeviceSpec, f: f64) -> DeviceSpec {
    assert!(f > 0.0 && f <= 1.0, "frequency scale {f} outside (0, 1]");
    let mut s = spec.clone();
    s.flops *= f;
    s.busy_watts = s.idle_watts + (spec.busy_watts - spec.idle_watts) * f * f * f;
    s
}

/// A whole fleet re-rated at relative frequency `f` (same devices, same
/// nodes, scaled specs).
pub fn fleet_at_frequency(fleet: &Fleet, f: f64) -> Fleet {
    let mut out = Fleet::new();
    for d in fleet.devices() {
        out.add(d.node, spec_at_frequency(&d.spec, f));
    }
    out
}

/// Dynamic energy per flop at frequency `f`, relative to `f = 1`.
///
/// `e(f) = P_dyn(f) / rate(f) = f³ / f = f²` — the quadratic saving that
/// motivates racing slowly, opposed by static power over the longer run.
pub fn relative_energy_per_flop(f: f64) -> f64 {
    assert!(f > 0.0 && f <= 1.0);
    f * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::device::DeviceClass;

    #[test]
    fn scaling_laws() {
        let base = catalog::spec(DeviceClass::FogServer);
        let half = spec_at_frequency(&base, 0.5);
        assert!((half.flops - base.flops * 0.5).abs() < 1e-9);
        // Idle unchanged; dynamic power scaled by 1/8.
        assert_eq!(half.idle_watts, base.idle_watts);
        let dyn_base = base.busy_watts - base.idle_watts;
        let dyn_half = half.busy_watts - half.idle_watts;
        assert!((dyn_half - dyn_base / 8.0).abs() < 1e-9);
    }

    #[test]
    fn unit_frequency_is_identity() {
        let base = catalog::spec(DeviceClass::CloudVm);
        let same = spec_at_frequency(&base, 1.0);
        assert_eq!(same.flops, base.flops);
        assert_eq!(same.busy_watts, base.busy_watts);
    }

    #[test]
    fn energy_per_flop_quadratic() {
        assert!((relative_energy_per_flop(0.5) - 0.25).abs() < 1e-12);
        assert_eq!(relative_energy_per_flop(1.0), 1.0);
    }

    #[test]
    fn fleet_rescaled_in_place() {
        let mut topo = continuum_net::Topology::new();
        let n = topo.add_node("x", continuum_net::Tier::Fog);
        let mut fleet = Fleet::new();
        fleet.add_class(n, DeviceClass::FogServer);
        let scaled = fleet_at_frequency(&fleet, 0.6);
        assert_eq!(scaled.len(), 1);
        assert_eq!(scaled.device(crate::DeviceId(0)).node, n);
        assert!(
            scaled.device(crate::DeviceId(0)).spec.flops
                < fleet.device(crate::DeviceId(0)).spec.flops
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn overclocking_rejected() {
        let base = catalog::spec(DeviceClass::CloudVm);
        spec_at_frequency(&base, 1.5);
    }
}
