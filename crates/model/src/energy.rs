//! Energy accounting.
//!
//! The model is the standard linear one: a device draws `idle_watts`
//! whenever powered, plus `watts_per_busy_core` for each busy core. The
//! meter accumulates joules per device from busy-interval reports and can
//! fold in idle energy over a makespan.

use crate::device::DeviceId;
use crate::fleet::Fleet;
use continuum_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Accumulates busy-time energy per device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    busy_joules: Vec<f64>,  // indexed by DeviceId
    busy_seconds: Vec<f64>, // core-seconds of busy time
}

impl EnergyMeter {
    /// Meter sized for a fleet.
    pub fn new(fleet: &Fleet) -> Self {
        EnergyMeter {
            busy_joules: vec![0.0; fleet.len()],
            busy_seconds: vec![0.0; fleet.len()],
        }
    }

    /// Record that `cores` cores of `device` were busy for `dur`.
    pub fn record_busy(&mut self, fleet: &Fleet, device: DeviceId, cores: u32, dur: SimDuration) {
        let spec = &fleet.device(device).spec;
        let secs = dur.as_secs_f64();
        self.busy_joules[device.0 as usize] += spec.watts_per_busy_core() * cores as f64 * secs;
        self.busy_seconds[device.0 as usize] += cores as f64 * secs;
    }

    /// Fold another meter for the same fleet into this one, device by
    /// device. Used when merging per-shard runs: each device accumulates
    /// busy time in exactly one shard, so for every index one operand is
    /// 0.0 and the elementwise add is bit-exact.
    ///
    /// # Panics
    /// If the meters were sized for different fleets.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.busy_joules.len(),
            other.busy_joules.len(),
            "merging energy meters of different fleets"
        );
        for (a, b) in self.busy_joules.iter_mut().zip(&other.busy_joules) {
            *a += b;
        }
        for (a, b) in self.busy_seconds.iter_mut().zip(&other.busy_seconds) {
            *a += b;
        }
    }

    /// Dynamic (busy) energy of one device, joules.
    pub fn busy_joules(&self, device: DeviceId) -> f64 {
        self.busy_joules[device.0 as usize]
    }

    /// Total dynamic energy across the fleet, joules.
    pub fn total_busy_joules(&self) -> f64 {
        self.busy_joules.iter().sum()
    }

    /// Total core-seconds of busy time across the fleet.
    pub fn total_busy_core_seconds(&self) -> f64 {
        self.busy_seconds.iter().sum()
    }

    /// Total energy including idle draw of every device over `makespan`
    /// (the whole fleet is assumed powered for the whole run).
    pub fn total_joules_with_idle(&self, fleet: &Fleet, makespan: SimDuration) -> f64 {
        let idle: f64 = fleet
            .devices()
            .iter()
            .map(|d| d.spec.idle_watts * makespan.as_secs_f64())
            .sum();
        idle + self.total_busy_joules()
    }

    /// Dynamic energy only of the devices actually used (nonzero busy time),
    /// plus their idle draw over the makespan. Models powering unused
    /// devices off — the "provision what you use" comparison point.
    pub fn used_devices_joules(&self, fleet: &Fleet, makespan: SimDuration) -> f64 {
        let mut total = 0.0;
        for d in fleet.devices() {
            let i = d.id.0 as usize;
            if self.busy_seconds[i] > 0.0 {
                total += d.spec.idle_watts * makespan.as_secs_f64() + self.busy_joules[i];
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use continuum_net::{Tier, Topology};

    fn one_device_fleet() -> (Fleet, DeviceId) {
        let mut topo = Topology::new();
        let n = topo.add_node("x", Tier::Edge);
        let mut fleet = Fleet::new();
        let d = fleet.add_class(n, DeviceClass::EdgeGateway);
        (fleet, d)
    }

    #[test]
    fn busy_energy_linear_in_time_and_cores() {
        let (fleet, d) = one_device_fleet();
        let mut m = EnergyMeter::new(&fleet);
        m.record_busy(&fleet, d, 1, SimDuration::from_secs(10));
        let one = m.busy_joules(d);
        m.record_busy(&fleet, d, 2, SimDuration::from_secs(10));
        assert!((m.busy_joules(d) - 3.0 * one).abs() < 1e-9);
    }

    #[test]
    fn idle_energy_added_over_makespan() {
        let (fleet, d) = one_device_fleet();
        let mut m = EnergyMeter::new(&fleet);
        m.record_busy(&fleet, d, 1, SimDuration::from_secs(1));
        let spec = &fleet.device(d).spec;
        let total = m.total_joules_with_idle(&fleet, SimDuration::from_secs(100));
        let expected = spec.idle_watts * 100.0 + spec.watts_per_busy_core();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn unused_devices_excluded_when_powered_off() {
        let mut topo = Topology::new();
        let a = topo.add_node("a", Tier::Edge);
        let b = topo.add_node("b", Tier::Edge);
        let mut fleet = Fleet::new();
        let da = fleet.add_class(a, DeviceClass::EdgeGateway);
        let _db = fleet.add_class(b, DeviceClass::EdgeGateway);
        let mut m = EnergyMeter::new(&fleet);
        m.record_busy(&fleet, da, 1, SimDuration::from_secs(1));
        let all_on = m.total_joules_with_idle(&fleet, SimDuration::from_secs(10));
        let used_only = m.used_devices_joules(&fleet, SimDuration::from_secs(10));
        assert!(used_only < all_on);
        assert!(used_only > 0.0);
    }
}
