//! A fleet: the set of devices deployed onto a topology.
//!
//! The fleet is the placement engine's universe of candidate execution
//! sites. Devices are dense-indexed ([`DeviceId`]) and cross-referenced to
//! topology nodes; at most one device per node (the common deployment in
//! this reproduction) is *not* assumed — a big cloud node may host several
//! VM devices.

use crate::catalog;
use crate::device::{Device, DeviceClass, DeviceId, DeviceSpec};
use continuum_net::{BuiltContinuum, NodeId, Tier};
use serde::{Deserialize, Serialize};

/// All devices deployed across the continuum.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fleet {
    devices: Vec<Device>,
    by_node: Vec<Vec<DeviceId>>, // indexed by NodeId
}

impl Fleet {
    /// Empty fleet.
    pub fn new() -> Self {
        Fleet::default()
    }

    /// Deploy a device with `spec` at topology node `node`.
    pub fn add(&mut self, node: NodeId, spec: DeviceSpec) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device { id, node, spec });
        let ni = node.0 as usize;
        if self.by_node.len() <= ni {
            self.by_node.resize_with(ni + 1, Vec::new);
        }
        self.by_node[ni].push(id);
        id
    }

    /// Deploy the catalog spec of `class` at `node`.
    pub fn add_class(&mut self, node: NodeId, class: DeviceClass) -> DeviceId {
        self.add(node, catalog::spec(class))
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if no devices are deployed.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Devices attached to a node.
    pub fn at_node(&self, node: NodeId) -> &[DeviceId] {
        self.by_node
            .get(node.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Devices whose spec tier equals `tier`.
    pub fn in_tier(&self, tier: Tier) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.spec.tier == tier)
            .map(|d| d.id)
            .collect()
    }

    /// Devices whose spec tier is `<= tier` (e.g. "edge or closer").
    pub fn at_or_below(&self, tier: Tier) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.spec.tier <= tier)
            .map(|d| d.id)
            .collect()
    }

    /// Total fleet compute speed, flop/s.
    pub fn total_flops(&self) -> f64 {
        self.devices.iter().map(|d| d.spec.flops).sum()
    }

    /// Total task slots (sum of cores).
    pub fn total_cores(&self) -> u64 {
        self.devices.iter().map(|d| d.spec.cores as u64).sum()
    }
}

/// The standard deployment used throughout the experiments: one catalog
/// device per continuum node, classes chosen by tier (sensors get motes,
/// edges get gateways, fogs get fog servers, clouds get VMs — the first
/// cloud node gets a large VM and a GPU — and HPC nodes get HPC nodes).
pub fn standard_fleet(built: &BuiltContinuum) -> Fleet {
    let mut fleet = Fleet::new();
    for &s in &built.sensors {
        fleet.add_class(s, DeviceClass::SensorMote);
    }
    for &e in &built.edges {
        fleet.add_class(e, DeviceClass::EdgeGateway);
    }
    for &f in &built.fogs {
        fleet.add_class(f, DeviceClass::FogServer);
    }
    for (i, &c) in built.clouds.iter().enumerate() {
        if i == 0 {
            fleet.add_class(c, DeviceClass::CloudVmLarge);
            fleet.add_class(c, DeviceClass::GpuAccelerator);
        } else {
            fleet.add_class(c, DeviceClass::CloudVm);
        }
    }
    for &h in &built.hpcs {
        fleet.add_class(h, DeviceClass::HpcNode);
    }
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_net::ContinuumSpec;

    #[test]
    fn standard_fleet_covers_all_tiers() {
        let built = continuum_net::continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        for tier in Tier::ALL {
            assert!(
                !fleet.in_tier(tier).is_empty(),
                "no devices in {}",
                tier.label()
            );
        }
        // One device per node, plus the extra GPU on cloud0.
        assert_eq!(fleet.len(), built.topology.node_count() + 1);
    }

    #[test]
    fn at_node_cross_reference() {
        let built = continuum_net::continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        for d in fleet.devices() {
            assert!(fleet.at_node(d.node).contains(&d.id));
        }
        // cloud0 hosts two devices.
        assert_eq!(fleet.at_node(built.clouds[0]).len(), 2);
    }

    #[test]
    fn tier_filters() {
        let built = continuum_net::continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        let edge_or_less = fleet.at_or_below(Tier::Edge);
        assert_eq!(
            edge_or_less.len(),
            fleet.in_tier(Tier::Sensor).len() + fleet.in_tier(Tier::Edge).len()
        );
    }

    #[test]
    fn totals_positive() {
        let built = continuum_net::continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        assert!(fleet.total_flops() > 0.0);
        assert!(fleet.total_cores() > 0);
    }

    #[test]
    fn empty_node_has_no_devices() {
        let fleet = Fleet::new();
        assert!(fleet.at_node(NodeId(42)).is_empty());
        assert!(fleet.is_empty());
    }
}
