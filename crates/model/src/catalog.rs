//! The built-in device catalog (experiment table T1).
//!
//! Order-of-magnitude figures for 2019-era hardware, chosen so that the
//! *ratios* between classes are realistic (≈5 orders of magnitude of
//! compute between a sensor mote and an HPC node); experiments sweep around
//! these values rather than depending on any one of them.

use crate::device::{DeviceClass, DeviceSpec};
use continuum_net::Tier;

/// Canonical spec for a device class.
pub fn spec(class: DeviceClass) -> DeviceSpec {
    match class {
        DeviceClass::SensorMote => DeviceSpec {
            class,
            tier: Tier::Sensor,
            cores: 1,
            flops: 5e7, // 50 Mflop/s
            mem_bytes: 256 << 10,
            idle_watts: 0.05,
            busy_watts: 0.35,
            usd_per_hour: 0.0,
            egress_usd_per_gb: 0.0,
        },
        DeviceClass::Microcontroller => DeviceSpec {
            class,
            tier: Tier::Sensor,
            cores: 1,
            flops: 5e8, // 500 Mflop/s (Cortex-M7 class)
            mem_bytes: 2 << 20,
            idle_watts: 0.1,
            busy_watts: 0.8,
            usd_per_hour: 0.0,
            egress_usd_per_gb: 0.0,
        },
        DeviceClass::EdgeGateway => DeviceSpec {
            class,
            tier: Tier::Edge,
            cores: 4,
            flops: 1.2e10, // 12 Gflop/s (RPi-4 class)
            mem_bytes: 4 << 30,
            idle_watts: 2.7,
            busy_watts: 7.0,
            usd_per_hour: 0.0,
            egress_usd_per_gb: 0.0,
        },
        DeviceClass::FogServer => DeviceSpec {
            class,
            tier: Tier::Fog,
            cores: 16,
            flops: 5e11, // 500 Gflop/s (Xeon-D class)
            mem_bytes: 64 << 30,
            idle_watts: 60.0,
            busy_watts: 200.0,
            usd_per_hour: 0.0,
            egress_usd_per_gb: 0.0,
        },
        DeviceClass::CloudVm => DeviceSpec {
            class,
            tier: Tier::Cloud,
            cores: 16,
            flops: 6e11, // 600 Gflop/s (c5.4xlarge class)
            mem_bytes: 32 << 30,
            idle_watts: 90.0,
            busy_watts: 250.0,
            usd_per_hour: 0.68,
            egress_usd_per_gb: 0.09,
        },
        DeviceClass::CloudVmLarge => DeviceSpec {
            class,
            tier: Tier::Cloud,
            cores: 48,
            flops: 2e12, // 2 Tflop/s
            mem_bytes: 96 << 30,
            idle_watts: 150.0,
            busy_watts: 450.0,
            usd_per_hour: 2.04,
            egress_usd_per_gb: 0.09,
        },
        DeviceClass::HpcNode => DeviceSpec {
            class,
            tier: Tier::Hpc,
            cores: 128,
            flops: 4e13, // 40 Tflop/s (GPU-dense node)
            mem_bytes: 512 << 30,
            idle_watts: 400.0,
            busy_watts: 2_200.0,
            usd_per_hour: 0.0, // allocation-funded
            egress_usd_per_gb: 0.0,
        },
        DeviceClass::GpuAccelerator => DeviceSpec {
            class,
            tier: Tier::Cloud,
            cores: 8,    // task slots (MIG-style partitions)
            flops: 7e12, // 7 Tflop/s FP64 (V100 class)
            mem_bytes: 32 << 30,
            idle_watts: 50.0,
            busy_watts: 300.0,
            usd_per_hour: 3.06,
            egress_usd_per_gb: 0.09,
        },
    }
}

/// The full catalog in class order — the rows of table T1.
pub fn all() -> Vec<DeviceSpec> {
    DeviceClass::ALL.iter().map(|&c| spec(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_spans_orders_of_magnitude() {
        let mote = spec(DeviceClass::SensorMote).flops;
        let hpc = spec(DeviceClass::HpcNode).flops;
        assert!(
            hpc / mote > 1e5,
            "continuum should span >= 5 orders of magnitude"
        );
    }

    #[test]
    fn monotone_compute_up_the_continuum() {
        let order = [
            DeviceClass::SensorMote,
            DeviceClass::Microcontroller,
            DeviceClass::EdgeGateway,
            DeviceClass::FogServer,
            DeviceClass::CloudVm,
            DeviceClass::CloudVmLarge,
            DeviceClass::HpcNode,
        ];
        for w in order.windows(2) {
            assert!(spec(w[0]).flops < spec(w[1]).flops, "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn busy_exceeds_idle_power() {
        for s in all() {
            assert!(s.busy_watts > s.idle_watts, "{}", s.class);
        }
    }

    #[test]
    fn tiers_consistent() {
        assert_eq!(spec(DeviceClass::SensorMote).tier, Tier::Sensor);
        assert_eq!(spec(DeviceClass::EdgeGateway).tier, Tier::Edge);
        assert_eq!(spec(DeviceClass::FogServer).tier, Tier::Fog);
        assert_eq!(spec(DeviceClass::CloudVm).tier, Tier::Cloud);
        assert_eq!(spec(DeviceClass::HpcNode).tier, Tier::Hpc);
    }

    #[test]
    fn only_cloud_bills() {
        for s in all() {
            if s.usd_per_hour > 0.0 {
                assert_eq!(s.tier, Tier::Cloud, "{} bills but is not cloud", s.class);
            }
        }
    }
}
