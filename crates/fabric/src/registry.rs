//! Function registry: named, size-annotated callables of the fabric.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Resource profile of a registered function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// This function's id.
    pub id: FunctionId,
    /// Unique name.
    pub name: String,
    /// Work per invocation, flops.
    pub work_flops: f64,
    /// Request payload size, bytes.
    pub in_bytes: u64,
    /// Response payload size, bytes.
    pub out_bytes: u64,
    /// Cores one invocation uses.
    pub parallelism: u32,
}

/// The registry: append-only, name-unique.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FunctionRegistry {
    functions: Vec<FunctionSpec>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Register a function.
    ///
    /// # Panics
    /// If the name is already taken.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        work_flops: f64,
        in_bytes: u64,
        out_bytes: u64,
    ) -> FunctionId {
        let name = name.into();
        assert!(
            self.by_name(&name).is_none(),
            "function '{name}' already registered"
        );
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(FunctionSpec {
            id,
            name,
            work_flops,
            in_bytes,
            out_bytes,
            parallelism: 1,
        });
        id
    }

    /// Function by id.
    ///
    /// # Panics
    /// On a stale or foreign id (one minted by a different registry, or
    /// outliving a registry swap). Use [`FunctionRegistry::try_get`] when
    /// the id's provenance is not guaranteed.
    pub fn get(&self, id: FunctionId) -> &FunctionSpec {
        &self.functions[id.0 as usize]
    }

    /// Function by id, `None` if the id is not registered here.
    pub fn try_get(&self, id: FunctionId) -> Option<&FunctionSpec> {
        self.functions.get(id.0 as usize)
    }

    /// Function by name.
    pub fn by_name(&self, name: &str) -> Option<&FunctionSpec> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// All functions.
    pub fn functions(&self) -> &[FunctionSpec] {
        &self.functions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = FunctionRegistry::new();
        let id = r.register("detect", 2e9, 1 << 20, 256);
        assert_eq!(r.get(id).name, "detect");
        assert_eq!(r.by_name("detect").unwrap().id, id);
        assert!(r.by_name("missing").is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn try_get_tolerates_stale_ids() {
        let mut r = FunctionRegistry::new();
        let id = r.register("detect", 2e9, 1 << 20, 256);
        assert_eq!(r.try_get(id).unwrap().name, "detect");
        // An id from a larger (swapped-out) registry resolves to None
        // instead of panicking.
        assert!(r.try_get(FunctionId(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_panics() {
        let mut r = FunctionRegistry::new();
        r.register("f", 1.0, 1, 1);
        r.register("f", 2.0, 2, 2);
    }
}
