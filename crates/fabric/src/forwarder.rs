//! The federation's forwarding layer: site selection and route-cached
//! payload transfers.
//!
//! Every invocation enters the federation at one origin node and is
//! *forwarded* to a site broker, which dispatches it onto one of the
//! site's endpoints. Payload legs (origin → endpoint, endpoint → origin)
//! are timed with the same analytic path model as the single-broker
//! fabric, but the [`Path`] lookups are memoized in the epoch-tagged
//! [`RouteCache`] shared across all sites: a fabric run resolves the same
//! (origin, endpoint-node) pairs thousands of times, and the cache turns
//! each repeat into a hash probe instead of a predecessor walk. Because
//! the cached value is exactly what recomputing would return (the cache
//! invariant), forwarded transfers stay bit-identical to the uncached
//! single-broker path — the federation's equivalence oracle depends on
//! this.

use continuum_net::{NodeId, RouteCache, RouteCacheStats};
use continuum_placement::Env;
use continuum_sim::SimDuration;

use crate::broker::RoutingPolicy;

/// Site-selection and transfer-timing state shared by all sites of one
/// federation run.
#[derive(Debug)]
pub struct Forwarder {
    cache: RouteCache,
    /// Site-level round-robin cursor (endpoint-level cursors live with
    /// the sites).
    rr_site: usize,
}

impl Default for Forwarder {
    fn default() -> Self {
        Forwarder::new()
    }
}

impl Forwarder {
    /// A fresh forwarder with an empty route cache.
    pub fn new() -> Forwarder {
        Forwarder {
            // Working set: one class-0 entry per (origin, endpoint-node)
            // pair in each direction; pre-size for a mid-size fabric.
            cache: RouteCache::with_capacity(1 << 12),
            rr_site: 0,
        }
    }

    /// Transfer time for `bytes` from `src` to `dst` over the cached
    /// canonical route; `None` iff the pair is disconnected.
    ///
    /// Bit-identical to `env.path(src, dst)?.transfer_time(bytes)` — the
    /// cache memoizes the identical computation under class 0.
    pub fn transfer(
        &mut self,
        env: &Env,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Option<SimDuration> {
        self.cache
            .route_with(src, dst, 0, || env.path(src, dst))
            .map(|p| p.transfer_time(bytes))
    }

    /// Pick the site a fresh (or re-routed) invocation is forwarded to.
    ///
    /// `live[s]` marks sites that are up, not suspected down, and own at
    /// least one routable endpoint; `outstanding[s]` is the site's
    /// assigned-but-unresponded count; `brokers[s]` is the site broker's
    /// home node. Returns `None` iff no site is live.
    ///
    /// Policies mirror the endpoint-level [`RoutingPolicy`] one level up:
    /// round-robin cycles live sites, least-outstanding picks the least
    /// loaded site (ties by id), locality picks the site whose broker is
    /// cheapest to reach from `origin` (ties by id). With a single live
    /// site every policy collapses to that site, which is what makes the
    /// 1-site federation arm comparable to the single broker.
    #[allow(clippy::too_many_arguments)]
    pub fn choose_site(
        &mut self,
        env: &Env,
        policy: RoutingPolicy,
        live: &[bool],
        outstanding: &[u64],
        brokers: &[NodeId],
        origin: NodeId,
        in_bytes: u64,
    ) -> Option<usize> {
        let n_live = live.iter().filter(|&&b| b).count();
        if n_live == 0 {
            return None;
        }
        match policy {
            RoutingPolicy::RoundRobin => {
                let k = self.rr_site % n_live;
                self.rr_site += 1;
                live.iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .nth(k)
                    .map(|(s, _)| s)
            }
            RoutingPolicy::LeastOutstanding => (0..live.len())
                .filter(|&s| live[s])
                .min_by_key(|&s| (outstanding[s], s)),
            RoutingPolicy::Locality => (0..live.len())
                .filter(|&s| live[s])
                .filter_map(|s| {
                    self.transfer(env, origin, brokers[s], in_bytes)
                        .map(|t| (t, s))
                })
                .min()
                .map(|(_, s)| s),
        }
    }

    /// Lifetime route-cache counters (hits, misses, epoch bumps, epoch).
    pub fn cache_stats(&self) -> RouteCacheStats {
        self.cache.snapshot()
    }

    /// Publish the forwarder's route-cache counters under `prefix`.
    pub fn publish_metrics(&self, reg: &continuum_obs::MetricsRegistry, prefix: &str) {
        self.cache.publish_metrics(reg, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};

    fn world() -> (Env, Vec<NodeId>) {
        let built = continuum(&ContinuumSpec::default());
        let sensors = built.sensors.clone();
        (
            Env::new(built.topology.clone(), standard_fleet(&built)),
            sensors,
        )
    }

    #[test]
    fn transfer_matches_uncached_path_and_hits_on_repeat() {
        let (env, sensors) = world();
        let mut fwd = Forwarder::new();
        let dst = env.fleet.devices()[0].node;
        let bytes = 200 << 10;
        let want = env.path(sensors[0], dst).unwrap().transfer_time(bytes);
        assert_eq!(fwd.transfer(&env, sensors[0], dst, bytes), Some(want));
        assert_eq!(fwd.transfer(&env, sensors[0], dst, bytes), Some(want));
        let s = fwd.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn choose_site_round_robin_cycles_live_sites() {
        let (env, sensors) = world();
        let mut fwd = Forwarder::new();
        let brokers = vec![sensors[0], sensors[1], sensors[2]];
        let live = vec![true, false, true];
        let out = vec![0, 0, 0];
        let picks: Vec<_> = (0..4)
            .map(|_| {
                fwd.choose_site(
                    &env,
                    RoutingPolicy::RoundRobin,
                    &live,
                    &out,
                    &brokers,
                    sensors[0],
                    1024,
                )
                .unwrap()
            })
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn choose_site_none_when_all_dead() {
        let (env, sensors) = world();
        let mut fwd = Forwarder::new();
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ] {
            assert_eq!(
                fwd.choose_site(
                    &env,
                    policy,
                    &[false, false],
                    &[0, 0],
                    &[sensors[0], sensors[1]],
                    sensors[0],
                    1024,
                ),
                None
            );
        }
    }

    #[test]
    fn choose_site_least_outstanding_prefers_idle() {
        let (env, sensors) = world();
        let mut fwd = Forwarder::new();
        let brokers = vec![sensors[0], sensors[1]];
        let got = fwd.choose_site(
            &env,
            RoutingPolicy::LeastOutstanding,
            &[true, true],
            &[5, 2],
            &brokers,
            sensors[0],
            1024,
        );
        assert_eq!(got, Some(1));
    }
}
