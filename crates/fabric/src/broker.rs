//! The fabric broker: routes invocations to endpoints and simulates their
//! execution.
//!
//! An *endpoint* is a worker pool pinned to a fleet device (our funcX
//! analogue). Invocations arrive over time from origin nodes; the broker
//! picks an endpoint under a [`RoutingPolicy`], the request payload moves
//! to the endpoint, executes when a slot frees, and the response moves
//! back. Experiment F7 reports throughput, latency percentiles, and
//! endpoint load balance (Jain index) under each policy.
//!
//! # Endpoint faults
//!
//! [`run_fabric_faulty`] additionally interprets the endpoint events of a
//! [`FaultSchedule`]. A crash kills the invocations running on the
//! endpoint (their elapsed execution is counted as lost work) and freezes
//! its queue; the broker notices only after a heartbeat interval
//! ([`EndpointFaults::heartbeat`] — funcX-style detection latency), then
//! re-routes the dead endpoint's queued and orphaned work to surviving
//! endpoints under the active policy, spacing attempts with capped
//! exponential backoff plus jitter ([`Backoff`]). An endpoint that
//! recovers *before* detection simply restarts its orphans in place (the
//! payloads are already there); recovery always comes back cold.

use crate::registry::{FunctionId, FunctionRegistry};
use continuum_model::DeviceId;
use continuum_net::NodeId;
use continuum_placement::Env;
use continuum_sim::{
    jain_fairness, EventQueue, FaultKind, FaultSchedule, Percentiles, Rng, SimDuration, SimTime,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EndpointId(pub u32);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A worker pool on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Endpoint {
    /// This endpoint's id.
    pub id: EndpointId,
    /// Device hosting the workers.
    pub device: DeviceId,
    /// Concurrent invocation slots (usually the device's core count).
    pub slots: u32,
}

/// How the broker chooses an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Cycle through endpoints.
    RoundRobin,
    /// Fewest outstanding (queued + running) invocations; id breaks ties.
    LeastOutstanding,
    /// Minimum predicted completion: request transfer + queue estimate +
    /// execution + response transfer. The continuum-aware policy.
    Locality,
}

impl RoutingPolicy {
    /// Label for experiment rows.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastOutstanding => "least-outstanding",
            RoutingPolicy::Locality => "locality",
        }
    }
}

/// One function invocation entering the fabric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Invocation {
    /// Arrival time.
    pub arrival: SimTime,
    /// Node issuing the call (payloads move from/to here).
    pub origin: NodeId,
    /// Function to run.
    pub function: FunctionId,
}

/// Capped exponential backoff with multiplicative jitter, spacing the
/// re-route attempts of work displaced by an endpoint crash.
///
/// Attempt `k` (0-based) waits `min(cap, base · 2^k)`, scaled by a
/// uniform factor in `[1 - jitter/2, 1 + jitter/2]` so that a burst of
/// displaced invocations does not re-arrive in lockstep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first re-route attempt.
    pub base: SimDuration,
    /// Upper bound on the exponential delay.
    pub cap: SimDuration,
    /// Jitter amplitude in `[0, 1]` (0 = deterministic).
    pub jitter: f64,
    /// Re-route attempts before an invocation is dropped as lost.
    pub max_retries: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(10),
            jitter: 0.2,
            max_retries: 16,
        }
    }
}

impl Backoff {
    /// Delay before re-route attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32, rng: &mut Rng) -> SimDuration {
        let exp = self.base.as_nanos().saturating_mul(1u64 << attempt.min(40));
        let d = SimDuration::from_nanos(exp.min(self.cap.as_nanos()).max(1));
        if self.jitter > 0.0 {
            d.mul_f64(1.0 + self.jitter * (rng.f64() - 0.5))
        } else {
            d
        }
    }
}

/// Endpoint fault injection for [`run_fabric_faulty`].
#[derive(Debug, Clone)]
pub struct EndpointFaults {
    /// Schedule whose `EndpointCrash`/`EndpointRecover` events are
    /// interpreted (device/link events are ignored by the broker).
    pub schedule: FaultSchedule,
    /// Heartbeat interval: how long after a crash the broker notices and
    /// starts re-routing the endpoint's work.
    pub heartbeat: SimDuration,
    /// Re-route pacing.
    pub backoff: Backoff,
    /// Seed for backoff jitter (deterministic per run).
    pub seed: u64,
}

/// Admission control at the broker: bounded backlog with reject-and-count.
///
/// A *new arrival* that finds `max_outstanding` or more invocations in the
/// system (assigned and not yet responded, across all endpoints) is
/// rejected outright — counted on [`FabricReport::rejected`], never
/// queued. This bounds every waiting queue, and with it the broker's
/// memory, by the cap instead of by the offered load. Displaced work
/// (re-routes after a crash) is never re-admitted through the gate: it
/// was already accepted, and dropping it would double-count against the
/// backoff budget.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Admission {
    /// Maximum in-system (assigned, unresponded) invocations at which a
    /// new arrival is still admitted.
    pub max_outstanding: usize,
}

/// Aggregate result of a fabric run.
///
/// `PartialEq` is derived so federation arms can be asserted bit-identical
/// to the single-broker oracle (floats compared exactly, on purpose).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// Completed invocations.
    pub completed: u64,
    /// End-to-end latency per invocation, seconds, in completion order.
    pub latencies_s: Vec<f64>,
    /// Completions per endpoint.
    pub per_endpoint: Vec<u64>,
    /// Completions per wall-clock second of the run.
    pub throughput_hz: f64,
    /// Jain fairness of per-endpoint completions.
    pub jain: f64,
    /// Virtual time when the last response arrived.
    pub end_time: SimTime,
    /// Integral of active slots over the run (slot-seconds) — the
    /// provisioning cost. With static provisioning this is
    /// `total slots × end_time`.
    pub slot_seconds: f64,
    /// Successful re-assignments of displaced work to a new endpoint.
    pub reroutes: u64,
    /// Backoff rounds scheduled for displaced work (≥ `reroutes`; the
    /// excess is rounds that found every endpoint down and waited again).
    pub retries: u64,
    /// Invocations abandoned after `Backoff::max_retries` rounds (or
    /// whose function id no longer resolved at re-route time).
    /// `completed + dropped + rejected` always equals the invocation
    /// count.
    pub dropped: u64,
    /// Arrivals refused by [`Admission`] control (0 without a gate).
    pub rejected: u64,
    /// Execution seconds destroyed by crashes (work that was running and
    /// had to restart elsewhere).
    pub lost_work_s: f64,
}

impl FabricReport {
    /// (p50, p95, p99) latency, seconds — exact sample quantiles.
    pub fn latency_percentiles(&self) -> (f64, f64, f64) {
        let mut p = Percentiles::new();
        for &l in &self.latencies_s {
            p.push(l);
        }
        p.p50_p95_p99().unwrap_or((0.0, 0.0, 0.0))
    }

    /// Latency distribution as the shared log₂ telemetry histogram.
    ///
    /// This is the *same construction* the broker's telemetry export uses
    /// for `fabric.latency` (one `observe_secs` per completion, in
    /// completion order), so report-side quantiles and exported metrics
    /// share one bucketing/conversion path and cannot drift. Exact sample
    /// quantiles stay on [`FabricReport::latency_percentiles`]; the
    /// histogram trades the documented ~2× bucket error for mergeability
    /// and O(1) memory.
    pub fn latency_histogram(&self) -> continuum_obs::Histogram {
        let mut h = continuum_obs::Histogram::default();
        for &l in &self.latencies_s {
            h.observe_secs(l);
        }
        h
    }

    /// Estimated latency `q`-quantile in nanoseconds via the shared
    /// histogram ([`continuum_obs::Histogram::quantile_ns`] semantics:
    /// within ~2× of the exact sample quantile, clamped to observed
    /// min/max).
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        self.latency_histogram().quantile_ns(q)
    }
}

/// Elastic provisioning of endpoint slots.
///
/// Each endpoint starts with `min_slots` active workers, grows one slot at
/// a time (up to its declared `slots`) whenever work is waiting and every
/// active slot is busy, and shrinks back toward `min_slots` whenever its
/// queue drains. The [`FabricReport::slot_seconds`] integral measures the
/// provisioning cost this saves versus static peak capacity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Autoscale {
    /// Slots an endpoint always keeps active.
    pub min_slots: u32,
}

/// Cold-start behaviour of endpoint workers (the funcX/serverless tax).
///
/// An endpoint whose last activity ended more than `keep_warm` ago pays
/// `cold_time` before the next invocation executes (container pull,
/// runtime boot, model load). Activity refreshes the warm window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ColdStart {
    /// Extra latency paid by an invocation that finds the endpoint cold.
    pub cold_time: continuum_sim::SimDuration,
    /// How long after its last activity an endpoint stays warm.
    pub keep_warm: continuum_sim::SimDuration,
}

#[derive(Debug)]
enum Ev {
    Arrive(usize),
    /// Request payload landed at `ep`. Stale if the invocation was
    /// re-routed while the payload was in flight (`epoch` mismatch).
    InputReady {
        ep: usize,
        inv: usize,
        epoch: u32,
    },
    /// Execution finished. Stale if the attempt was killed by a crash.
    ExecDone {
        ep: usize,
        inv: usize,
        epoch: u32,
    },
    ResponseBack {
        inv: usize,
    },
    EpCrash(usize),
    EpRecover(usize),
    /// Heartbeat timeout: the broker notices crash generation `gen` of
    /// endpoint `ep` (stale if the endpoint recovered, or crashed again,
    /// in the meantime).
    EpDetect {
        ep: usize,
        gen: u32,
    },
    /// A displaced invocation's backoff expired; pick a new endpoint.
    Reroute(usize),
}

/// Per-endpoint broker state. Shared with the federation engine
/// (`federation.rs`), whose 1-site arm must evolve this state exactly as
/// the single-broker loop does.
pub(crate) struct EpState {
    pub(crate) scale: ScaleState,
    pub(crate) waiting: VecDeque<usize>,
    pub(crate) outstanding: u32,
    pub(crate) warm_until: SimTime,
    /// Slot-availability estimates for the Locality policy.
    pub(crate) lane_est: Vec<SimTime>,
    pub(crate) up: bool,
    /// Down *and* past its detection heartbeat: excluded from routing.
    pub(crate) known_down: bool,
    /// Crash generation, to match detect events to the right outage.
    pub(crate) gen: u32,
    /// Invocations currently executing here.
    pub(crate) running: Vec<usize>,
    /// Invocations killed by a crash, awaiting detection or recovery.
    pub(crate) orphans: Vec<usize>,
    pub(crate) completions: u64,
}

/// Initial per-endpoint state — one shared constructor so the federation
/// engine starts from bit-identical state.
pub(crate) fn ep_states(endpoints: &[Endpoint], autoscale: Option<Autoscale>) -> Vec<EpState> {
    endpoints
        .iter()
        .map(|e| EpState {
            scale: ScaleState {
                active: match autoscale {
                    Some(a) => a.min_slots.min(e.slots).max(1),
                    None => e.slots,
                },
                busy: 0,
                slot_seconds: 0.0,
                last_change: SimTime::ZERO,
            },
            waiting: VecDeque::new(),
            outstanding: 0,
            // SimTime::ZERO means "cold since the beginning": the first
            // touch of every endpoint pays the cold-start tax.
            warm_until: SimTime::ZERO,
            lane_est: vec![SimTime::ZERO; e.slots as usize],
            up: true,
            known_down: false,
            gen: 0,
            running: Vec::new(),
            orphans: Vec::new(),
            completions: 0,
        })
        .collect()
}

/// Per-invocation broker state.
struct InvState {
    assigned: usize,
    /// Bumped when the running attempt is killed or the invocation is
    /// re-routed; in-flight events carrying an older epoch are ignored.
    epoch: u32,
    /// Re-route rounds consumed.
    attempts: u32,
    exec_start: SimTime,
    done_at: Option<SimTime>,
}

/// Run a set of invocations through the fabric.
///
/// Transfers use the analytic path model (no cross-invocation link
/// contention — the fabric experiment isolates endpoint queueing; the DAG
/// executor in `continuum-runtime` covers link contention).
pub fn run_fabric(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
) -> FabricReport {
    run_fabric_cfg(env, registry, endpoints, invocations, policy, None)
}

/// [`run_fabric`] with optional cold-start modeling.
pub fn run_fabric_cfg(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
    cold: Option<ColdStart>,
) -> FabricReport {
    run_fabric_elastic(env, registry, endpoints, invocations, policy, cold, None)
}

/// [`run_fabric_cfg`] with optional elastic slot provisioning.
#[allow(clippy::too_many_arguments)]
pub fn run_fabric_elastic(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
    cold: Option<ColdStart>,
    autoscale: Option<Autoscale>,
) -> FabricReport {
    run_fabric_faulty(
        env,
        registry,
        endpoints,
        invocations,
        policy,
        cold,
        autoscale,
        None,
    )
}

/// [`run_fabric_elastic`] with optional endpoint fault injection.
///
/// With `faults: None` this is exactly the fault-free broker. With a
/// schedule, endpoint crash/recover events are interpreted as described
/// in the module docs; `completed + dropped == invocations.len()` always
/// holds on the report.
#[allow(clippy::too_many_arguments)]
pub fn run_fabric_faulty(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
    cold: Option<ColdStart>,
    autoscale: Option<Autoscale>,
    faults: Option<&EndpointFaults>,
) -> FabricReport {
    run_fabric_admission(
        env,
        registry,
        endpoints,
        invocations,
        policy,
        cold,
        autoscale,
        faults,
        None,
    )
}

/// [`run_fabric_faulty`] with optional [`Admission`] control (bounded
/// backlog, reject-and-count backpressure). With `admission: None` this
/// is exactly the unbounded broker.
#[allow(clippy::too_many_arguments)]
pub fn run_fabric_admission(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
    cold: Option<ColdStart>,
    autoscale: Option<Autoscale>,
    faults: Option<&EndpointFaults>,
    admission: Option<Admission>,
) -> FabricReport {
    assert!(!endpoints.is_empty(), "no endpoints");
    let n_ep = endpoints.len();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut eps: Vec<EpState> = ep_states(endpoints, autoscale);
    let mut invs: Vec<InvState> = invocations
        .iter()
        .map(|_| InvState {
            assigned: usize::MAX,
            epoch: 0,
            attempts: 0,
            exec_start: SimTime::ZERO,
            done_at: None,
        })
        .collect();
    let mut rr_next = 0usize;
    let mut latencies: Vec<f64> = Vec::with_capacity(invocations.len());
    let mut reroutes = 0u64;
    let mut retries = 0u64;
    let mut dropped = 0u64;
    let mut rejected = 0u64;
    let mut lost_work_s = 0.0f64;
    let mut jitter_rng = Rng::new(faults.map_or(0, |f| f.seed));
    // Telemetry: resolved once on entry; plain local counters in the loop
    // (same cost as the reroute/retry counters above), published at exit.
    let tele = continuum_obs::ambient();
    let trace_on = tele
        .as_deref()
        .is_some_and(continuum_obs::Telemetry::trace_enabled);
    let mut failovers = 0u64;
    let mut detections = 0u64;
    let mut recoveries = 0u64;
    let mut orphans_restarted = 0u64;

    for (i, inv) in invocations.iter().enumerate() {
        queue.schedule_at(inv.arrival, Ev::Arrive(i));
    }
    if let Some(f) = faults {
        for ev in f.schedule.events() {
            let kind = match ev.kind {
                FaultKind::EndpointCrash => Ev::EpCrash(ev.target as usize),
                FaultKind::EndpointRecover => Ev::EpRecover(ev.target as usize),
                _ => continue, // device/link faults are not the broker's
            };
            assert!(
                (ev.target as usize) < n_ep,
                "fault schedule targets endpoint {} but only {n_ep} exist",
                ev.target
            );
            queue.schedule_at(ev.at, kind);
        }
    }

    // Assign `i` to endpoint `ep` and launch its request payload.
    macro_rules! assign {
        ($i:expr, $ep:expr, $spec:expr, $now:expr) => {{
            let (i, ep, now) = ($i, $ep, $now);
            let spec = $spec;
            invs[i].assigned = ep;
            eps[ep].outstanding += 1;
            let dev = &env.fleet.device(endpoints[ep].device);
            let exec = dev
                .spec
                .compute_time_parallel(spec.work_flops, spec.parallelism);
            let tin = env
                .path(invocations[i].origin, dev.node)
                .expect("disconnected topology")
                .transfer_time(spec.in_bytes);
            // Update the locality estimate for the chosen endpoint.
            let lanes = &mut eps[ep].lane_est;
            let (k, _) = lanes
                .iter()
                .enumerate()
                .min_by_key(|&(i, t)| (*t, i))
                .expect("non-empty lanes");
            lanes[k] = (now + tin).max(lanes[k]) + exec;
            let epoch = invs[i].epoch;
            queue.schedule_at(now + tin, Ev::InputReady { ep, inv: i, epoch });
        }};
    }

    // One backoff round for a displaced invocation (or give it up).
    macro_rules! backoff_or_drop {
        ($i:expr, $now:expr) => {{
            let (i, now) = ($i, $now);
            let cfg = faults.expect("displacement implies faults").backoff;
            if invs[i].attempts >= cfg.max_retries {
                dropped += 1;
            } else {
                let delay = cfg.delay(invs[i].attempts, &mut jitter_rng);
                invs[i].attempts += 1;
                retries += 1;
                queue.schedule_at(now + delay, Ev::Reroute(i));
            }
        }};
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Arrive(i) => {
                // Backpressure gate: count the in-system load and bounce
                // the arrival if the cap is hit. Only new arrivals pass
                // here — displaced work re-enters via `Ev::Reroute`.
                if let Some(a) = admission {
                    let in_system: usize = eps.iter().map(|e| e.outstanding as usize).sum();
                    if in_system >= a.max_outstanding {
                        rejected += 1;
                        continue;
                    }
                }
                let spec = registry.get(invocations[i].function);
                let candidates: Vec<usize> = (0..n_ep).filter(|&e| !eps[e].known_down).collect();
                // At least one endpoint is always un-suspected at arrival
                // time only if detection hasn't flagged all of them; if it
                // has, treat the arrival like displaced work and back off.
                match choose_endpoint(
                    env,
                    endpoints,
                    &eps,
                    &candidates,
                    policy,
                    &mut rr_next,
                    spec,
                    invocations[i].origin,
                    now,
                ) {
                    Some(ep) => assign!(i, ep, spec, now),
                    None => backoff_or_drop!(i, now),
                }
            }
            Ev::Reroute(i) => {
                // The function id can outlive a registry swap in a long-
                // lived broker; a stale id means the work is undeliverable.
                let Some(spec) = registry.try_get(invocations[i].function) else {
                    dropped += 1;
                    continue;
                };
                let candidates: Vec<usize> = (0..n_ep).filter(|&e| !eps[e].known_down).collect();
                match choose_endpoint(
                    env,
                    endpoints,
                    &eps,
                    &candidates,
                    policy,
                    &mut rr_next,
                    spec,
                    invocations[i].origin,
                    now,
                ) {
                    Some(ep) => {
                        reroutes += 1;
                        invs[i].epoch += 1;
                        assign!(i, ep, spec, now);
                    }
                    None => backoff_or_drop!(i, now),
                }
            }
            Ev::InputReady { ep, inv, epoch } => {
                if epoch != invs[inv].epoch {
                    continue; // re-routed while the payload was in flight
                }
                if eps[ep].known_down {
                    // Payload landed on an endpoint already declared dead.
                    eps[ep].outstanding -= 1;
                    backoff_or_drop!(inv, now);
                    continue;
                }
                eps[ep].waiting.push_back(inv);
                // Elastic scale-up: queued work and every slot busy.
                if autoscale.is_some() && eps[ep].up {
                    let st = &mut eps[ep].scale;
                    if st.busy >= st.active && st.active < endpoints[ep].slots {
                        st.grow(now);
                    }
                }
                try_start(
                    env,
                    registry,
                    endpoints,
                    &mut queue,
                    &mut eps,
                    &mut invs,
                    ep,
                    now,
                    invocations,
                    cold,
                );
            }
            Ev::ExecDone { ep, inv, epoch } => {
                if epoch != invs[inv].epoch {
                    continue; // this attempt was killed by a crash
                }
                eps[ep].scale.busy -= 1;
                let pos = eps[ep]
                    .running
                    .iter()
                    .position(|&r| r == inv)
                    .expect("finished invocation is running");
                eps[ep].running.swap_remove(pos);
                let spec = registry.get(invocations[inv].function);
                let ep_node = env.fleet.device(endpoints[ep].device).node;
                let tout = env
                    .path(ep_node, invocations[inv].origin)
                    .expect("disconnected topology")
                    .transfer_time(spec.out_bytes);
                queue.schedule_at(now + tout, Ev::ResponseBack { inv });
                try_start(
                    env,
                    registry,
                    endpoints,
                    &mut queue,
                    &mut eps,
                    &mut invs,
                    ep,
                    now,
                    invocations,
                    cold,
                );
                // Elastic scale-down: queue drained, spare slots idle.
                if let Some(a) = autoscale {
                    if eps[ep].waiting.is_empty() {
                        let floor = a.min_slots.min(endpoints[ep].slots).max(1);
                        let st = &mut eps[ep].scale;
                        st.shrink_to(st.busy.max(floor), now);
                    }
                }
            }
            Ev::ResponseBack { inv } => {
                let ep = invs[inv].assigned;
                eps[ep].outstanding -= 1;
                eps[ep].completions += 1;
                invs[inv].done_at = Some(now);
                latencies.push(now.since(invocations[inv].arrival).as_secs_f64());
            }
            Ev::EpCrash(ep) => {
                if !eps[ep].up {
                    continue;
                }
                failovers += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer
                            .instant(format!("ep {ep} crash"), "fabric", now.0, t.pid(), 1);
                    }
                }
                let e = &mut eps[ep];
                e.up = false;
                e.gen += 1;
                // Kill the running attempts; their elapsed execution is
                // destroyed. The invocations become orphans awaiting
                // either detection (re-route) or recovery (restart here).
                for inv in std::mem::take(&mut e.running) {
                    lost_work_s += now.since(invs[inv].exec_start).as_secs_f64();
                    invs[inv].epoch += 1;
                    e.orphans.push(inv);
                }
                // Slot-seconds stop accruing while the pool is dead.
                e.scale.settle(now);
                e.scale.active = 0;
                e.scale.busy = 0;
                e.warm_until = SimTime::ZERO; // recovery comes back cold
                let gen = e.gen;
                let hb = faults.expect("crash event implies faults").heartbeat;
                queue.schedule_at(now + hb, Ev::EpDetect { ep, gen });
            }
            Ev::EpDetect { ep, gen } => {
                if eps[ep].up || eps[ep].gen != gen {
                    continue; // recovered (or crashed again) meanwhile
                }
                detections += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer.instant(
                            format!("ep {ep} detected down"),
                            "fabric",
                            now.0,
                            t.pid(),
                            1,
                        );
                    }
                }
                eps[ep].known_down = true;
                let mut displaced: Vec<usize> = eps[ep].orphans.drain(..).collect();
                displaced.extend(eps[ep].waiting.drain(..));
                for inv in displaced {
                    eps[ep].outstanding -= 1;
                    backoff_or_drop!(inv, now);
                }
            }
            Ev::EpRecover(ep) => {
                if eps[ep].up {
                    continue;
                }
                recoveries += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer
                            .instant(format!("ep {ep} recover"), "fabric", now.0, t.pid(), 1);
                    }
                }
                let e = &mut eps[ep];
                e.up = true;
                e.known_down = false;
                e.scale.settle(now);
                e.scale.active = match autoscale {
                    Some(a) => a.min_slots.min(endpoints[ep].slots).max(1),
                    None => endpoints[ep].slots,
                };
                debug_assert_eq!(e.scale.busy, 0);
                // Orphans not yet detected restart here: their payloads
                // already live on the endpoint.
                for inv in std::mem::take(&mut e.orphans) {
                    orphans_restarted += 1;
                    e.waiting.push_back(inv);
                }
                try_start(
                    env,
                    registry,
                    endpoints,
                    &mut queue,
                    &mut eps,
                    &mut invs,
                    ep,
                    now,
                    invocations,
                    cold,
                );
            }
        }
    }

    let end_time = invs
        .iter()
        .filter_map(|s| s.done_at)
        .max()
        .unwrap_or(SimTime::ZERO);
    let completed = latencies.len() as u64;
    debug_assert_eq!(
        completed + dropped + rejected,
        invocations.len() as u64,
        "invocation conservation"
    );
    let span = end_time.as_secs_f64();
    let slot_seconds: f64 = eps
        .iter_mut()
        .map(|e| {
            e.scale.settle(end_time);
            e.scale.slot_seconds
        })
        .sum();
    let per_endpoint: Vec<u64> = eps.iter().map(|e| e.completions).collect();
    let report = FabricReport {
        completed,
        throughput_hz: if span > 0.0 {
            completed as f64 / span
        } else {
            0.0
        },
        jain: jain_fairness(&per_endpoint.iter().map(|&c| c as f64).collect::<Vec<_>>()),
        per_endpoint,
        latencies_s: latencies,
        end_time,
        slot_seconds,
        reroutes,
        retries,
        dropped,
        rejected,
        lost_work_s,
    };
    if let Some(t) = tele.as_deref() {
        let m = &t.metrics;
        m.inc("fabric.invocations", invocations.len() as u64);
        m.inc("fabric.completed", completed);
        m.record("fabric.reroutes", reroutes);
        m.record("fabric.retries", retries);
        m.record("fabric.dropped", dropped);
        m.record("fabric.rejected", rejected);
        m.record("fabric.failovers", failovers);
        m.record("fabric.detections", detections);
        m.record("fabric.recoveries", recoveries);
        m.record("fabric.orphans_restarted", orphans_restarted);
        m.set_gauge("fabric.lost_work_s", lost_work_s);
        if span > 0.0 {
            m.set_gauge("fabric.throughput_hz", completed as f64 / span);
        }
        for (ep, &c) in report.per_endpoint.iter().enumerate() {
            m.inc_labeled("fabric.endpoint_completions", ep as u32, c);
        }
        // Exported latency distribution IS the report's shared histogram
        // (see `FabricReport::latency_histogram`): one construction path
        // for report quantiles and telemetry.
        let mut snap = continuum_obs::MetricsSnapshot::new();
        snap.merge_histogram("fabric.latency", &report.latency_histogram());
        m.absorb(&snap);
    }
    report
}

/// Pick an endpoint among `candidates` under `policy`; `None` iff the
/// candidate set is empty (every endpoint known-down).
#[allow(clippy::too_many_arguments)]
fn choose_endpoint(
    env: &Env,
    endpoints: &[Endpoint],
    eps: &[EpState],
    candidates: &[usize],
    policy: RoutingPolicy,
    rr_next: &mut usize,
    spec: &crate::registry::FunctionSpec,
    origin: NodeId,
    now: SimTime,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    Some(match policy {
        RoutingPolicy::RoundRobin => {
            let ep = candidates[*rr_next % candidates.len()];
            *rr_next += 1;
            ep
        }
        RoutingPolicy::LeastOutstanding => candidates
            .iter()
            .copied()
            .min_by_key(|&e| (eps[e].outstanding, e))
            .expect("candidates non-empty"),
        RoutingPolicy::Locality => {
            candidates
                .iter()
                .copied()
                .map(|e| {
                    let dev = &env.fleet.device(endpoints[e].device);
                    let ep_node = dev.node;
                    let tin = env
                        .path(origin, ep_node)
                        .expect("disconnected topology")
                        .transfer_time(spec.in_bytes);
                    let tout = env
                        .path(ep_node, origin)
                        .expect("disconnected topology")
                        .transfer_time(spec.out_bytes);
                    let exec = dev
                        .spec
                        .compute_time_parallel(spec.work_flops, spec.parallelism);
                    let mut lanes = eps[e].lane_est.clone();
                    lanes.sort_unstable();
                    let start = (now + tin).max(lanes[0]);
                    (start + exec + tout, e)
                })
                .min()
                .expect("candidates non-empty")
                .1
        }
    })
}

/// Per-endpoint elastic slot accounting.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScaleState {
    pub(crate) active: u32,
    pub(crate) busy: u32,
    pub(crate) slot_seconds: f64,
    pub(crate) last_change: SimTime,
}

impl ScaleState {
    pub(crate) fn settle(&mut self, now: SimTime) {
        self.slot_seconds += self.active as f64 * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
    }

    pub(crate) fn grow(&mut self, now: SimTime) {
        self.settle(now);
        self.active += 1;
    }

    pub(crate) fn shrink_to(&mut self, target: u32, now: SimTime) {
        if target < self.active {
            self.settle(now);
            self.active = target;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_start(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    queue: &mut EventQueue<Ev>,
    eps: &mut [EpState],
    invs: &mut [InvState],
    ep: usize,
    now: SimTime,
    invocations: &[Invocation],
    cold: Option<ColdStart>,
) {
    if !eps[ep].up {
        return;
    }
    while eps[ep].scale.busy < eps[ep].scale.active {
        let Some(inv) = eps[ep].waiting.pop_front() else {
            break;
        };
        eps[ep].scale.busy += 1;
        let spec = registry.get(invocations[inv].function);
        let dev = &env.fleet.device(endpoints[ep].device);
        let mut exec = dev
            .spec
            .compute_time_parallel(spec.work_flops, spec.parallelism);
        if let Some(cs) = cold {
            // Endpoint-level warmth: one cold boot warms the whole pool.
            if now > eps[ep].warm_until {
                exec += cs.cold_time;
            }
            eps[ep].warm_until = (now + exec) + cs.keep_warm;
        }
        invs[inv].exec_start = now;
        eps[ep].running.push(inv);
        let epoch = invs[inv].epoch;
        queue.schedule_at(now + exec, Ev::ExecDone { ep, inv, epoch });
    }
}

/// Build one endpoint per device of the given tier(s), slots = cores.
pub fn endpoints_on(env: &Env, devices: &[DeviceId]) -> Vec<Endpoint> {
    devices
        .iter()
        .enumerate()
        .map(|(i, &d)| Endpoint {
            id: EndpointId(i as u32),
            device: d,
            slots: env.fleet.device(d).spec.cores,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::Rng;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>, Vec<Invocation>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        let f = reg.register("infer", 5e9, 200 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(77);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..200)
            .map(|i| {
                t += rng.exp(50.0);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: built.sensors[i % built.sensors.len()],
                    function: f,
                }
            })
            .collect();
        (env, reg, eps, invocations)
    }

    #[test]
    fn all_policies_complete_everything() {
        let (env, reg, eps, invs) = setup();
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ] {
            let rep = run_fabric(&env, &reg, &eps, &invs, policy);
            assert_eq!(rep.completed, invs.len() as u64, "{}", policy.label());
            assert_eq!(
                rep.per_endpoint.iter().sum::<u64>(),
                invs.len() as u64,
                "{}",
                policy.label()
            );
            assert!(rep.throughput_hz > 0.0);
            let (p50, p95, p99) = rep.latency_percentiles();
            assert!(p50 <= p95 && p95 <= p99);
            assert_eq!(rep.reroutes + rep.retries + rep.dropped + rep.rejected, 0);
            assert_eq!(rep.lost_work_s, 0.0);
        }
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let (env, reg, eps, invs) = setup();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        assert!(rep.jain > 0.99, "jain {}", rep.jain);
    }

    #[test]
    fn latency_exceeds_bare_service_time() {
        let (env, reg, eps, invs) = setup();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::Locality);
        // Minimum possible latency: transfer in + exec + transfer out > 0.
        for &l in &rep.latencies_s {
            assert!(l > 0.0);
        }
    }

    #[test]
    fn single_endpoint_queues() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        // Heavy function: 60 Gflop on a CloudVm core (3.75e10 f/s) ~ 1.6s.
        let f = reg.register("heavy", 6e10, 1 << 10, 1 << 10);
        let cloud = env.fleet.in_tier(Tier::Cloud);
        let eps = endpoints_on(&env, &cloud[..1]);
        let invs: Vec<Invocation> = (0..64)
            .map(|_| Invocation {
                arrival: SimTime::ZERO,
                origin: built.edges[0],
                function: f,
            })
            .collect();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        assert_eq!(rep.completed, 64);
        let (p50, _, p99) = rep.latency_percentiles();
        // With more work than slots, late invocations wait: p99 >> p50.
        assert!(p99 > p50 * 1.5, "no queueing visible: p50={p50} p99={p99}");
    }

    #[test]
    fn endpoints_on_empty_device_list_is_empty() {
        let (env, _, _, _) = setup();
        assert!(endpoints_on(&env, &[]).is_empty());
    }

    #[test]
    fn endpoints_on_preserves_order_and_slots() {
        let (env, _, _, _) = setup();
        let mut devices = env.fleet.in_tier(Tier::Cloud);
        devices.extend(env.fleet.in_tier(Tier::Fog));
        // Scramble the input order: ids must still be consecutive and the
        // device order must be preserved exactly (site pools are built
        // from these indices).
        devices.reverse();
        let eps = endpoints_on(&env, &devices);
        assert_eq!(eps.len(), devices.len());
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.id, EndpointId(i as u32));
            assert_eq!(ep.device, devices[i]);
            assert_eq!(ep.slots, env.fleet.device(devices[i]).spec.cores);
            assert!(ep.slots > 0);
        }
        // Deterministic: same input, same output.
        let again = endpoints_on(&env, &devices);
        for (a, b) in eps.iter().zip(again.iter()) {
            assert_eq!((a.id, a.device, a.slots), (b.id, b.device, b.slots));
        }
    }

    #[test]
    fn endpoints_on_tier_without_devices_is_empty() {
        let (env, _, _, _) = setup();
        // Sensor nodes carry no fleet devices in the standard fleet.
        let sensors = env.fleet.in_tier(Tier::Sensor);
        let eps = endpoints_on(&env, &sensors);
        assert_eq!(eps.len(), sensors.len());
        // If the tier is populated this still checks slot wiring; if not,
        // the empty list must come back empty rather than panic.
        for ep in &eps {
            assert!(ep.slots > 0);
        }
    }

    #[test]
    fn latency_histogram_matches_exact_percentiles_within_bucket_error() {
        let (env, reg, eps, invs) = setup();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::Locality);
        let (p50, p95, p99) = rep.latency_percentiles();
        for (q, exact) in [(0.50, p50), (0.95, p95), (0.99, p99)] {
            let est_s = rep.latency_quantile_ns(q) as f64 / 1e9;
            // The log₂ histogram documents ~2× relative error; allow a
            // little slack for interpolation at bucket edges.
            assert!(
                est_s <= exact * 2.5 + 1e-9 && est_s >= exact / 2.5 - 1e-9,
                "q={q}: histogram {est_s} vs exact {exact}"
            );
        }
        assert_eq!(rep.latency_histogram().count, rep.completed);
    }

    #[test]
    fn telemetry_export_equals_report_histogram() {
        let (env, reg, eps, invs) = setup();
        let tele = std::rc::Rc::new(continuum_obs::Telemetry::new(false));
        let rep = continuum_obs::with_ambient(&tele, || {
            run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin)
        });
        let snap = tele.metrics.snapshot();
        let exported = snap.histogram("fabric.latency").expect("exported");
        // Bit-for-bit the same histogram: one shared construction path.
        assert_eq!(*exported, rep.latency_histogram());
    }
}

#[cfg(test)]
mod cold_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::SimDuration;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        reg.register("f", 1e9, 1 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        (env, reg, eps)
    }

    fn sparse_invocations(env: &Env, gap_s: f64, n: usize) -> Vec<Invocation> {
        let origin = env.fleet.devices()[0].node;
        (0..n)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(i as f64 * gap_s),
                origin,
                function: FunctionId(0),
            })
            .collect()
    }

    #[test]
    fn cold_start_adds_latency_to_sparse_traffic() {
        let (env, reg, eps) = setup();
        let invs = sparse_invocations(&env, 30.0, 10);
        let warm = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        let cold = run_fabric_cfg(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::RoundRobin,
            Some(ColdStart {
                cold_time: SimDuration::from_secs(2),
                keep_warm: SimDuration::from_secs(5),
            }),
        );
        // 30 s gaps with a 5 s keep-warm: every invocation boots cold.
        let (w50, _, _) = warm.latency_percentiles();
        let (c50, _, _) = cold.latency_percentiles();
        assert!((c50 - w50 - 2.0).abs() < 0.01, "warm {w50} cold {c50}");
    }

    #[test]
    fn keep_warm_amortizes_bursts() {
        let (env, reg, eps) = setup();
        // A tight burst: only the first invocation per endpoint boots.
        let invs = sparse_invocations(&env, 0.01, 20);
        let cold = run_fabric_cfg(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::RoundRobin,
            Some(ColdStart {
                cold_time: SimDuration::from_secs(2),
                keep_warm: SimDuration::from_secs(60),
            }),
        );
        let boots = cold.latencies_s.iter().filter(|&&l| l > 2.0).count();
        // At most one boot per endpoint touched.
        assert!(
            boots <= eps.len(),
            "boots {boots} > endpoints {}",
            eps.len()
        );
        assert!(boots >= 1);
    }
}

#[cfg(test)]
mod autoscale_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::Rng;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        reg.register("f", 2e10, 100 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        (env, reg, eps)
    }

    fn bursty(env: &Env, n: usize, seed: u64) -> Vec<Invocation> {
        // Three dense bursts separated by long idle gaps.
        let origin = env.fleet.devices()[0].node;
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| {
                let burst = i / (n / 3).max(1);
                let t = burst as f64 * 120.0 + rng.range_f64(0.0, 2.0);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin,
                    function: FunctionId(0),
                }
            })
            .collect()
    }

    #[test]
    fn autoscaling_cuts_provisioning_cost() {
        let (env, reg, eps) = setup();
        let invs = bursty(&env, 90, 5);
        let fixed = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::LeastOutstanding);
        let elastic = run_fabric_elastic(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::LeastOutstanding,
            None,
            Some(Autoscale { min_slots: 1 }),
        );
        assert_eq!(elastic.completed, invs.len() as u64);
        // Bursty-idle traffic: elastic provisioning uses a fraction of the
        // static slot-seconds.
        assert!(
            elastic.slot_seconds < fixed.slot_seconds * 0.5,
            "elastic {} vs fixed {}",
            elastic.slot_seconds,
            fixed.slot_seconds
        );
        // And the latency price is bounded (slots grow one arrival at a
        // time, so bursts queue briefly).
        let (_, _, p99_fixed) = fixed.latency_percentiles();
        let (_, _, p99_elastic) = elastic.latency_percentiles();
        assert!(
            p99_elastic < p99_fixed * 10.0,
            "elastic latency blew up: {p99_elastic} vs {p99_fixed}"
        );
    }

    #[test]
    fn static_slot_seconds_equals_capacity_times_span() {
        let (env, reg, eps) = setup();
        let invs = bursty(&env, 30, 7);
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        let total_slots: u32 = eps.iter().map(|e| e.slots).sum();
        let expected = total_slots as f64 * rep.end_time.as_secs_f64();
        assert!((rep.slot_seconds - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn elastic_never_exceeds_declared_slots() {
        let (env, reg, eps) = setup();
        // Overload one endpoint hard.
        let invs: Vec<Invocation> = (0..200)
            .map(|_| Invocation {
                arrival: SimTime::ZERO,
                origin: env.fleet.devices()[0].node,
                function: FunctionId(0),
            })
            .collect();
        let one = vec![eps[0].clone()];
        let rep = run_fabric_elastic(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            Some(Autoscale { min_slots: 1 }),
        );
        assert_eq!(rep.completed, 200);
        // The integral cannot exceed full provisioning of the one endpoint.
        let cap = eps[0].slots as f64 * rep.end_time.as_secs_f64();
        assert!(rep.slot_seconds <= cap * (1.0 + 1e-9));
    }

    #[test]
    fn shrink_during_backlog_never_strands_running_work() {
        // Regression guard on settle/shrink ordering: when the queue
        // drains while many invocations still *run*, the scale-down in
        // ExecDone clamps to `busy.max(floor)` — shrinking below the
        // running count would strand live work (busy > active would
        // underflow accounting and stall the pool).
        let (env, reg, eps) = setup();
        let one = vec![eps[0].clone()];
        assert!(one[0].slots >= 2, "test needs a multi-slot endpoint");
        // A burst exactly fills the pool, then nothing else arrives: the
        // queue is empty from the first ExecDone onward while slots - 1
        // invocations are still running.
        let n = one[0].slots as usize;
        let invs: Vec<Invocation> = (0..n)
            .map(|_| Invocation {
                arrival: SimTime::ZERO,
                origin: env.fleet.devices()[0].node,
                function: FunctionId(0),
            })
            .collect();
        let rep = run_fabric_elastic(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            Some(Autoscale { min_slots: 1 }),
        );
        assert_eq!(rep.completed, n as u64, "shrink stranded running work");
        // Active capacity must have covered every running invocation for
        // its full execution: slot-seconds >= total execution seconds.
        let dev = &env.fleet.device(one[0].device);
        let spec = reg.get(FunctionId(0));
        let exec_s = dev
            .spec
            .compute_time_parallel(spec.work_flops, spec.parallelism)
            .as_secs_f64();
        let min_work = exec_s * n as f64;
        assert!(
            rep.slot_seconds >= min_work * (1.0 - 1e-9),
            "slot-seconds {} < running work {min_work}: pool shrank under live work",
            rep.slot_seconds
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::SimDuration;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        // ~1.3 s per invocation on a CloudVm core.
        reg.register("f", 5e10, 100 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        (env, reg, eps)
    }

    fn steady(env: &Env, n: usize, gap_s: f64) -> Vec<Invocation> {
        let origin = env.fleet.devices()[0].node;
        (0..n)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(i as f64 * gap_s),
                origin,
                function: FunctionId(0),
            })
            .collect()
    }

    fn faults_with(schedule: FaultSchedule) -> EndpointFaults {
        EndpointFaults {
            schedule,
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: 9,
        }
    }

    #[test]
    fn no_faults_matches_fault_free_run() {
        let (env, reg, eps) = setup();
        let invs = steady(&env, 40, 0.25);
        let plain = run_fabric_elastic(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::LeastOutstanding,
            None,
            None,
        );
        let faulty = run_fabric_faulty(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::LeastOutstanding,
            None,
            None,
            Some(&faults_with(FaultSchedule::new())),
        );
        assert_eq!(plain.completed, faulty.completed);
        assert_eq!(plain.latencies_s, faulty.latencies_s);
        assert_eq!(plain.end_time, faulty.end_time);
        assert_eq!(faulty.reroutes, 0);
        assert_eq!(faulty.lost_work_s, 0.0);
    }

    #[test]
    fn crash_displaces_work_to_survivors() {
        let (env, reg, eps) = setup();
        assert!(eps.len() >= 2);
        let invs = steady(&env, 60, 0.1);
        // Crash endpoint 0 mid-run, recover it much later.
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::EndpointCrash,
            0,
            SimTime::from_secs(2),
            SimDuration::from_secs(300),
        );
        let rep = run_fabric_faulty(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            None,
            Some(&faults_with(schedule)),
        );
        // Everything completes (survivors absorb the displaced work)...
        assert_eq!(rep.completed + rep.dropped, invs.len() as u64);
        assert_eq!(rep.dropped, 0, "survivors should absorb everything");
        // ...some of it visibly re-routed, with destroyed execution time.
        assert!(rep.reroutes > 0, "crash mid-run must displace work");
        assert!(rep.retries >= rep.reroutes);
        assert!(rep.lost_work_s > 0.0, "running work was killed");
    }

    #[test]
    fn recovery_before_detection_restarts_in_place() {
        let (env, reg, eps) = setup();
        let one = vec![eps[0].clone()];
        let invs = steady(&env, 4, 0.05);
        // Down for 100 ms, detection takes 500 ms: the broker never
        // notices; orphans restart on the recovered endpoint.
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::EndpointCrash,
            0,
            SimTime::from_secs(1),
            SimDuration::from_millis(100),
        );
        let rep = run_fabric_faulty(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            None,
            Some(&faults_with(schedule)),
        );
        assert_eq!(rep.completed, invs.len() as u64);
        assert_eq!(rep.reroutes, 0, "nothing re-routed: crash was undetected");
    }

    #[test]
    fn all_endpoints_down_backs_off_until_recovery() {
        let (env, reg, eps) = setup();
        let one = vec![eps[0].clone()];
        let invs = steady(&env, 3, 0.01);
        // The only endpoint dies before arrivals and recovers at t=30s.
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::EndpointCrash,
            0,
            SimTime::from_millis(1),
            SimDuration::from_secs(30),
        );
        let rep = run_fabric_faulty(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::Locality,
            None,
            None,
            Some(&faults_with(schedule)),
        );
        assert_eq!(
            rep.completed + rep.dropped,
            invs.len() as u64,
            "conservation"
        );
        assert_eq!(rep.completed, invs.len() as u64, "work survives the outage");
        // Latencies reflect waiting out the 30 s outage.
        let (p50, _, _) = rep.latency_percentiles();
        assert!(p50 > 25.0, "p50 {p50} should include the outage");
    }

    #[test]
    fn unrecovered_outage_drops_after_max_retries() {
        let (env, reg, eps) = setup();
        let one = vec![eps[0].clone()];
        let invs = steady(&env, 2, 0.01);
        // Crash with no recovery: a hand-built schedule may strand work;
        // bounded retries turn that into explicit drops, not a hang.
        let mut schedule = FaultSchedule::new();
        schedule.push(SimTime::from_millis(1), FaultKind::EndpointCrash, 0);
        let mut faults = faults_with(schedule);
        faults.backoff.max_retries = 3;
        let rep = run_fabric_faulty(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            None,
            Some(&faults),
        );
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.dropped, invs.len() as u64);
    }

    #[test]
    fn backoff_delays_are_capped_and_monotone_in_expectation() {
        let b = Backoff {
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(5),
            jitter: 0.0,
            max_retries: 32,
        };
        let mut rng = Rng::new(1);
        let d0 = b.delay(0, &mut rng);
        let d3 = b.delay(3, &mut rng);
        let d20 = b.delay(20, &mut rng);
        assert_eq!(d0, SimDuration::from_millis(100));
        assert_eq!(d3, SimDuration::from_millis(800));
        assert_eq!(d20, SimDuration::from_secs(5), "cap applies");
        // Jitter perturbs but stays within ±jitter/2.
        let j = Backoff { jitter: 0.5, ..b };
        for attempt in 0..10 {
            let d = j.delay(attempt, &mut rng);
            let nominal = b.delay(attempt, &mut rng).as_secs_f64();
            let f = d.as_secs_f64() / nominal;
            assert!((0.75..=1.25).contains(&f), "jitter factor {f}");
        }
    }
}

#[cfg(test)]
mod admission_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::SimDuration;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        // ~1.6 s per invocation on a CloudVm core.
        reg.register("heavy", 6e10, 100 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        (env, reg, eps)
    }

    fn burst(env: &Env, n: usize, gap_s: f64) -> Vec<Invocation> {
        let origin = env.fleet.devices()[0].node;
        (0..n)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(i as f64 * gap_s),
                origin,
                function: FunctionId(0),
            })
            .collect()
    }

    #[test]
    fn bounded_backlog_rejects_and_conserves() {
        let (env, reg, eps) = setup();
        let one = vec![eps[0].clone()];
        // 200 near-simultaneous heavy invocations into one endpoint with
        // an in-system cap of 8: the first 8 are admitted, the rest
        // bounce off the gate.
        let invs = burst(&env, 200, 1e-6);
        let rep = run_fabric_admission(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            None,
            None,
            Some(Admission { max_outstanding: 8 }),
        );
        assert_eq!(rep.completed + rep.dropped + rep.rejected, 200);
        assert_eq!(rep.rejected, 192);
        assert_eq!(rep.completed, 8);
        assert_eq!(rep.dropped, 0);
    }

    #[test]
    fn unbounded_gate_is_a_noop() {
        let (env, reg, eps) = setup();
        let invs = burst(&env, 60, 0.05);
        let plain = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::LeastOutstanding);
        let gated = run_fabric_admission(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::LeastOutstanding,
            None,
            None,
            None,
            Some(Admission {
                max_outstanding: usize::MAX,
            }),
        );
        assert_eq!(gated.rejected, 0);
        assert_eq!(plain.completed, gated.completed);
        assert_eq!(plain.latencies_s, gated.latencies_s);
        assert_eq!(plain.end_time, gated.end_time);
    }

    #[test]
    fn conservation_holds_under_crashes_with_admission() {
        let (env, reg, eps) = setup();
        assert!(eps.len() >= 2);
        let invs = burst(&env, 120, 0.05);
        let mut schedule = FaultSchedule::new();
        schedule.crash_and_recover(
            FaultKind::EndpointCrash,
            0,
            SimTime::from_secs(1),
            SimDuration::from_secs(300),
        );
        let rep = run_fabric_admission(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            None,
            Some(&EndpointFaults {
                schedule,
                heartbeat: SimDuration::from_millis(500),
                backoff: Backoff::default(),
                seed: 9,
            }),
            Some(Admission {
                max_outstanding: 12,
            }),
        );
        // The cap bites under this burst, the crash displaces admitted
        // work, and every invocation is still accounted for exactly once.
        assert!(rep.rejected > 0, "cap of 12 should bounce arrivals");
        assert_eq!(
            rep.completed + rep.dropped + rep.rejected,
            invs.len() as u64
        );
    }
}
