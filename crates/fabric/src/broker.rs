//! The fabric broker: routes invocations to endpoints and simulates their
//! execution.
//!
//! An *endpoint* is a worker pool pinned to a fleet device (our funcX
//! analogue). Invocations arrive over time from origin nodes; the broker
//! picks an endpoint under a [`RoutingPolicy`], the request payload moves
//! to the endpoint, executes when a slot frees, and the response moves
//! back. Experiment F7 reports throughput, latency percentiles, and
//! endpoint load balance (Jain index) under each policy.

use crate::registry::{FunctionId, FunctionRegistry};
use continuum_model::DeviceId;
use continuum_net::NodeId;
use continuum_placement::Env;
use continuum_sim::{jain_fairness, EventQueue, Percentiles, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EndpointId(pub u32);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A worker pool on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Endpoint {
    /// This endpoint's id.
    pub id: EndpointId,
    /// Device hosting the workers.
    pub device: DeviceId,
    /// Concurrent invocation slots (usually the device's core count).
    pub slots: u32,
}

/// How the broker chooses an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Cycle through endpoints.
    RoundRobin,
    /// Fewest outstanding (queued + running) invocations; id breaks ties.
    LeastOutstanding,
    /// Minimum predicted completion: request transfer + queue estimate +
    /// execution + response transfer. The continuum-aware policy.
    Locality,
}

impl RoutingPolicy {
    /// Label for experiment rows.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastOutstanding => "least-outstanding",
            RoutingPolicy::Locality => "locality",
        }
    }
}

/// One function invocation entering the fabric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Invocation {
    /// Arrival time.
    pub arrival: SimTime,
    /// Node issuing the call (payloads move from/to here).
    pub origin: NodeId,
    /// Function to run.
    pub function: FunctionId,
}

/// Aggregate result of a fabric run.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Completed invocations.
    pub completed: u64,
    /// End-to-end latency per invocation, seconds, in completion order.
    pub latencies_s: Vec<f64>,
    /// Completions per endpoint.
    pub per_endpoint: Vec<u64>,
    /// Completions per wall-clock second of the run.
    pub throughput_hz: f64,
    /// Jain fairness of per-endpoint completions.
    pub jain: f64,
    /// Virtual time when the last response arrived.
    pub end_time: SimTime,
    /// Integral of active slots over the run (slot-seconds) — the
    /// provisioning cost. With static provisioning this is
    /// `total slots × end_time`.
    pub slot_seconds: f64,
}

impl FabricReport {
    /// (p50, p95, p99) latency, seconds.
    pub fn latency_percentiles(&self) -> (f64, f64, f64) {
        let mut p = Percentiles::new();
        for &l in &self.latencies_s {
            p.push(l);
        }
        p.p50_p95_p99().unwrap_or((0.0, 0.0, 0.0))
    }
}

/// Elastic provisioning of endpoint slots.
///
/// Each endpoint starts with `min_slots` active workers, grows one slot at
/// a time (up to its declared `slots`) whenever work is waiting and every
/// active slot is busy, and shrinks back toward `min_slots` whenever its
/// queue drains. The [`FabricReport::slot_seconds`] integral measures the
/// provisioning cost this saves versus static peak capacity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Autoscale {
    /// Slots an endpoint always keeps active.
    pub min_slots: u32,
}

/// Cold-start behaviour of endpoint workers (the funcX/serverless tax).
///
/// An endpoint whose last activity ended more than `keep_warm` ago pays
/// `cold_time` before the next invocation executes (container pull,
/// runtime boot, model load). Activity refreshes the warm window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ColdStart {
    /// Extra latency paid by an invocation that finds the endpoint cold.
    pub cold_time: continuum_sim::SimDuration,
    /// How long after its last activity an endpoint stays warm.
    pub keep_warm: continuum_sim::SimDuration,
}

#[derive(Debug)]
enum Ev {
    Arrive(usize),
    InputReady { ep: usize, inv: usize },
    ExecDone { ep: usize, inv: usize },
    ResponseBack { inv: usize },
}

/// Run a set of invocations through the fabric.
///
/// Transfers use the analytic path model (no cross-invocation link
/// contention — the fabric experiment isolates endpoint queueing; the DAG
/// executor in `continuum-runtime` covers link contention).
pub fn run_fabric(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
) -> FabricReport {
    run_fabric_cfg(env, registry, endpoints, invocations, policy, None)
}

/// [`run_fabric`] with optional cold-start modeling.
pub fn run_fabric_cfg(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
    cold: Option<ColdStart>,
) -> FabricReport {
    run_fabric_elastic(env, registry, endpoints, invocations, policy, cold, None)
}

/// [`run_fabric_cfg`] with optional elastic slot provisioning.
#[allow(clippy::too_many_arguments)]
pub fn run_fabric_elastic(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    invocations: &[Invocation],
    policy: RoutingPolicy,
    cold: Option<ColdStart>,
    autoscale: Option<Autoscale>,
) -> FabricReport {
    assert!(!endpoints.is_empty(), "no endpoints");
    let n_ep = endpoints.len();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut scale: Vec<ScaleState> = endpoints
        .iter()
        .map(|e| ScaleState {
            active: match autoscale {
                Some(a) => a.min_slots.min(e.slots).max(1),
                None => e.slots,
            },
            busy: 0,
            slot_seconds: 0.0,
            last_change: SimTime::ZERO,
        })
        .collect();
    let mut waiting: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_ep];
    let mut outstanding: Vec<u32> = vec![0; n_ep];
    // SimTime::ZERO means "cold since the beginning": the first touch of
    // every endpoint pays the cold-start tax.
    let mut warm_until: Vec<SimTime> = vec![SimTime::ZERO; n_ep];
    // Per-endpoint slot-availability estimates for the Locality policy.
    let mut lane_est: Vec<Vec<SimTime>> = endpoints
        .iter()
        .map(|e| vec![SimTime::ZERO; e.slots as usize])
        .collect();
    let mut rr_next = 0usize;

    let mut assigned_ep: Vec<usize> = vec![usize::MAX; invocations.len()];
    let mut done_at: Vec<Option<SimTime>> = vec![None; invocations.len()];
    let mut per_endpoint: Vec<u64> = vec![0; n_ep];
    let mut latencies: Vec<f64> = Vec::with_capacity(invocations.len());

    for (i, inv) in invocations.iter().enumerate() {
        queue.schedule_at(inv.arrival, Ev::Arrive(i));
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Arrive(i) => {
                let inv = &invocations[i];
                let spec = registry.get(inv.function);
                // Choose an endpoint.
                let ep = match policy {
                    RoutingPolicy::RoundRobin => {
                        let ep = rr_next % n_ep;
                        rr_next += 1;
                        ep
                    }
                    RoutingPolicy::LeastOutstanding => (0..n_ep)
                        .min_by_key(|&e| (outstanding[e], e))
                        .expect("endpoints non-empty"),
                    RoutingPolicy::Locality => {
                        (0..n_ep)
                            .map(|e| {
                                let dev = &env.fleet.device(endpoints[e].device);
                                let ep_node = dev.node;
                                let tin = env
                                    .path(inv.origin, ep_node)
                                    .expect("disconnected topology")
                                    .transfer_time(spec.in_bytes);
                                let tout = env
                                    .path(ep_node, inv.origin)
                                    .expect("disconnected topology")
                                    .transfer_time(spec.out_bytes);
                                let exec = dev
                                    .spec
                                    .compute_time_parallel(spec.work_flops, spec.parallelism);
                                let mut lanes = lane_est[e].clone();
                                lanes.sort_unstable();
                                let start = (now + tin).max(lanes[0]);
                                (start + exec + tout, e)
                            })
                            .min()
                            .expect("endpoints non-empty")
                            .1
                    }
                };
                assigned_ep[i] = ep;
                outstanding[ep] += 1;
                // Update the locality estimate for the chosen endpoint.
                let dev = &env.fleet.device(endpoints[ep].device);
                let exec = dev
                    .spec
                    .compute_time_parallel(spec.work_flops, spec.parallelism);
                let tin = env
                    .path(inv.origin, dev.node)
                    .expect("disconnected topology")
                    .transfer_time(spec.in_bytes);
                {
                    let lanes = &mut lane_est[ep];
                    let (k, _) = lanes
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, t)| (*t, i))
                        .expect("non-empty lanes");
                    lanes[k] = (now + tin).max(lanes[k]) + exec;
                }
                queue.schedule_at(now + tin, Ev::InputReady { ep, inv: i });
            }
            Ev::InputReady { ep, inv } => {
                waiting[ep].push_back(inv);
                // Elastic scale-up: queued work and every slot busy.
                if autoscale.is_some() {
                    let st = &mut scale[ep];
                    if st.busy >= st.active && st.active < endpoints[ep].slots {
                        st.grow(now);
                    }
                }
                try_start(
                    env,
                    registry,
                    endpoints,
                    &mut queue,
                    &mut scale,
                    &mut waiting,
                    ep,
                    now,
                    invocations,
                    cold,
                    &mut warm_until,
                );
            }
            Ev::ExecDone { ep, inv } => {
                scale[ep].busy -= 1;
                let i = inv;
                let spec = registry.get(invocations[i].function);
                let ep_node = env.fleet.device(endpoints[ep].device).node;
                let tout = env
                    .path(ep_node, invocations[i].origin)
                    .expect("disconnected topology")
                    .transfer_time(spec.out_bytes);
                queue.schedule_at(now + tout, Ev::ResponseBack { inv: i });
                try_start(
                    env,
                    registry,
                    endpoints,
                    &mut queue,
                    &mut scale,
                    &mut waiting,
                    ep,
                    now,
                    invocations,
                    cold,
                    &mut warm_until,
                );
                // Elastic scale-down: queue drained, spare slots idle.
                if let Some(a) = autoscale {
                    let st = &mut scale[ep];
                    if waiting[ep].is_empty() {
                        let floor = a.min_slots.min(endpoints[ep].slots).max(1);
                        st.shrink_to(st.busy.max(floor), now);
                    }
                }
            }
            Ev::ResponseBack { inv } => {
                let ep = assigned_ep[inv];
                outstanding[ep] -= 1;
                per_endpoint[ep] += 1;
                done_at[inv] = Some(now);
                latencies.push(now.since(invocations[inv].arrival).as_secs_f64());
            }
        }
    }

    let end_time = done_at
        .iter()
        .flatten()
        .copied()
        .max()
        .unwrap_or(SimTime::ZERO);
    let completed = latencies.len() as u64;
    let span = end_time.as_secs_f64();
    let slot_seconds: f64 = scale
        .iter_mut()
        .map(|st| {
            st.settle(end_time);
            st.slot_seconds
        })
        .sum();
    FabricReport {
        completed,
        throughput_hz: if span > 0.0 {
            completed as f64 / span
        } else {
            0.0
        },
        jain: jain_fairness(&per_endpoint.iter().map(|&c| c as f64).collect::<Vec<_>>()),
        per_endpoint,
        latencies_s: latencies,
        end_time,
        slot_seconds,
    }
}

/// Per-endpoint elastic slot accounting.
#[derive(Debug, Clone, Copy)]
struct ScaleState {
    active: u32,
    busy: u32,
    slot_seconds: f64,
    last_change: SimTime,
}

impl ScaleState {
    fn settle(&mut self, now: SimTime) {
        self.slot_seconds += self.active as f64 * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
    }

    fn grow(&mut self, now: SimTime) {
        self.settle(now);
        self.active += 1;
    }

    fn shrink_to(&mut self, target: u32, now: SimTime) {
        if target < self.active {
            self.settle(now);
            self.active = target;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_start(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    queue: &mut EventQueue<Ev>,
    scale: &mut [ScaleState],
    waiting: &mut [VecDeque<usize>],
    ep: usize,
    now: SimTime,
    invocations: &[Invocation],
    cold: Option<ColdStart>,
    warm_until: &mut [SimTime],
) {
    while scale[ep].busy < scale[ep].active {
        let Some(inv) = waiting[ep].pop_front() else {
            break;
        };
        scale[ep].busy += 1;
        let spec = registry.get(invocations[inv].function);
        let dev = &env.fleet.device(endpoints[ep].device);
        let mut exec = dev
            .spec
            .compute_time_parallel(spec.work_flops, spec.parallelism);
        if let Some(cs) = cold {
            // Endpoint-level warmth: one cold boot warms the whole pool.
            if now > warm_until[ep] {
                exec += cs.cold_time;
            }
            warm_until[ep] = (now + exec) + cs.keep_warm;
        }
        queue.schedule_at(now + exec, Ev::ExecDone { ep, inv });
    }
}

/// Build one endpoint per device of the given tier(s), slots = cores.
pub fn endpoints_on(env: &Env, devices: &[DeviceId]) -> Vec<Endpoint> {
    devices
        .iter()
        .enumerate()
        .map(|(i, &d)| Endpoint {
            id: EndpointId(i as u32),
            device: d,
            slots: env.fleet.device(d).spec.cores,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::Rng;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>, Vec<Invocation>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        let f = reg.register("infer", 5e9, 200 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(77);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..200)
            .map(|i| {
                t += rng.exp(50.0);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: built.sensors[i % built.sensors.len()],
                    function: f,
                }
            })
            .collect();
        (env, reg, eps, invocations)
    }

    #[test]
    fn all_policies_complete_everything() {
        let (env, reg, eps, invs) = setup();
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ] {
            let rep = run_fabric(&env, &reg, &eps, &invs, policy);
            assert_eq!(rep.completed, invs.len() as u64, "{}", policy.label());
            assert_eq!(
                rep.per_endpoint.iter().sum::<u64>(),
                invs.len() as u64,
                "{}",
                policy.label()
            );
            assert!(rep.throughput_hz > 0.0);
            let (p50, p95, p99) = rep.latency_percentiles();
            assert!(p50 <= p95 && p95 <= p99);
        }
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let (env, reg, eps, invs) = setup();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        assert!(rep.jain > 0.99, "jain {}", rep.jain);
    }

    #[test]
    fn latency_exceeds_bare_service_time() {
        let (env, reg, eps, invs) = setup();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::Locality);
        // Minimum possible latency: transfer in + exec + transfer out > 0.
        for &l in &rep.latencies_s {
            assert!(l > 0.0);
        }
    }

    #[test]
    fn single_endpoint_queues() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        // Heavy function: 60 Gflop on a CloudVm core (3.75e10 f/s) ~ 1.6s.
        let f = reg.register("heavy", 6e10, 1 << 10, 1 << 10);
        let cloud = env.fleet.in_tier(Tier::Cloud);
        let eps = endpoints_on(&env, &cloud[..1]);
        let invs: Vec<Invocation> = (0..64)
            .map(|_| Invocation {
                arrival: SimTime::ZERO,
                origin: built.edges[0],
                function: f,
            })
            .collect();
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        assert_eq!(rep.completed, 64);
        let (p50, _, p99) = rep.latency_percentiles();
        // With more work than slots, late invocations wait: p99 >> p50.
        assert!(p99 > p50 * 1.5, "no queueing visible: p50={p50} p99={p99}");
    }
}

#[cfg(test)]
mod cold_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::SimDuration;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        reg.register("f", 1e9, 1 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        (env, reg, eps)
    }

    fn sparse_invocations(env: &Env, gap_s: f64, n: usize) -> Vec<Invocation> {
        let origin = env.fleet.devices()[0].node;
        (0..n)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(i as f64 * gap_s),
                origin,
                function: FunctionId(0),
            })
            .collect()
    }

    #[test]
    fn cold_start_adds_latency_to_sparse_traffic() {
        let (env, reg, eps) = setup();
        let invs = sparse_invocations(&env, 30.0, 10);
        let warm = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        let cold = run_fabric_cfg(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::RoundRobin,
            Some(ColdStart {
                cold_time: SimDuration::from_secs(2),
                keep_warm: SimDuration::from_secs(5),
            }),
        );
        // 30 s gaps with a 5 s keep-warm: every invocation boots cold.
        let (w50, _, _) = warm.latency_percentiles();
        let (c50, _, _) = cold.latency_percentiles();
        assert!((c50 - w50 - 2.0).abs() < 0.01, "warm {w50} cold {c50}");
    }

    #[test]
    fn keep_warm_amortizes_bursts() {
        let (env, reg, eps) = setup();
        // A tight burst: only the first invocation per endpoint boots.
        let invs = sparse_invocations(&env, 0.01, 20);
        let cold = run_fabric_cfg(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::RoundRobin,
            Some(ColdStart {
                cold_time: SimDuration::from_secs(2),
                keep_warm: SimDuration::from_secs(60),
            }),
        );
        let boots = cold.latencies_s.iter().filter(|&&l| l > 2.0).count();
        // At most one boot per endpoint touched.
        assert!(
            boots <= eps.len(),
            "boots {boots} > endpoints {}",
            eps.len()
        );
        assert!(boots >= 1);
    }
}

#[cfg(test)]
mod autoscale_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_sim::Rng;

    fn setup() -> (Env, FunctionRegistry, Vec<Endpoint>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut reg = FunctionRegistry::new();
        reg.register("f", 2e10, 100 << 10, 1 << 10);
        let eps = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        (env, reg, eps)
    }

    fn bursty(env: &Env, n: usize, seed: u64) -> Vec<Invocation> {
        // Three dense bursts separated by long idle gaps.
        let origin = env.fleet.devices()[0].node;
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| {
                let burst = i / (n / 3).max(1);
                let t = burst as f64 * 120.0 + rng.range_f64(0.0, 2.0);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin,
                    function: FunctionId(0),
                }
            })
            .collect()
    }

    #[test]
    fn autoscaling_cuts_provisioning_cost() {
        let (env, reg, eps) = setup();
        let invs = bursty(&env, 90, 5);
        let fixed = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::LeastOutstanding);
        let elastic = run_fabric_elastic(
            &env,
            &reg,
            &eps,
            &invs,
            RoutingPolicy::LeastOutstanding,
            None,
            Some(Autoscale { min_slots: 1 }),
        );
        assert_eq!(elastic.completed, invs.len() as u64);
        // Bursty-idle traffic: elastic provisioning uses a fraction of the
        // static slot-seconds.
        assert!(
            elastic.slot_seconds < fixed.slot_seconds * 0.5,
            "elastic {} vs fixed {}",
            elastic.slot_seconds,
            fixed.slot_seconds
        );
        // And the latency price is bounded (slots grow one arrival at a
        // time, so bursts queue briefly).
        let (_, _, p99_fixed) = fixed.latency_percentiles();
        let (_, _, p99_elastic) = elastic.latency_percentiles();
        assert!(
            p99_elastic < p99_fixed * 10.0,
            "elastic latency blew up: {p99_elastic} vs {p99_fixed}"
        );
    }

    #[test]
    fn static_slot_seconds_equals_capacity_times_span() {
        let (env, reg, eps) = setup();
        let invs = bursty(&env, 30, 7);
        let rep = run_fabric(&env, &reg, &eps, &invs, RoutingPolicy::RoundRobin);
        let total_slots: u32 = eps.iter().map(|e| e.slots).sum();
        let expected = total_slots as f64 * rep.end_time.as_secs_f64();
        assert!((rep.slot_seconds - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn elastic_never_exceeds_declared_slots() {
        let (env, reg, eps) = setup();
        // Overload one endpoint hard.
        let invs: Vec<Invocation> = (0..200)
            .map(|_| Invocation {
                arrival: SimTime::ZERO,
                origin: env.fleet.devices()[0].node,
                function: FunctionId(0),
            })
            .collect();
        let one = vec![eps[0].clone()];
        let rep = run_fabric_elastic(
            &env,
            &reg,
            &one,
            &invs,
            RoutingPolicy::RoundRobin,
            None,
            Some(Autoscale { min_slots: 1 }),
        );
        assert_eq!(rep.completed, 200);
        // The integral cannot exceed full provisioning of the one endpoint.
        let cap = eps[0].slots as f64 * rep.end_time.as_secs_f64();
        assert!(rep.slot_seconds <= cap * (1.0 + 1e-9));
    }
}
