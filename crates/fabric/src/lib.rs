//! # continuum-fabric
//!
//! Federated function-as-a-service fabric — the funcX analogue of the
//! `coding-the-continuum` reproduction. Functions are registered once with
//! a resource profile ([`FunctionRegistry`]); *endpoints* (worker pools on
//! fleet devices) execute them; the broker routes each invocation under a
//! [`RoutingPolicy`] and simulates queueing and payload movement.
//!
//! Experiment F7 measures throughput, latency percentiles, and endpoint
//! load balance for each routing policy.

#![warn(missing_docs)]

pub mod broker;
pub mod federation;
pub mod forwarder;
pub mod registry;

pub use broker::{
    endpoints_on, run_fabric, run_fabric_admission, run_fabric_cfg, run_fabric_elastic,
    run_fabric_faulty, Admission, Autoscale, Backoff, ColdStart, Endpoint, EndpointFaults,
    EndpointId, FabricReport, Invocation, RoutingPolicy,
};
pub use federation::{
    run_federation, single_site, sites_from_partition, FederationCfg, FederationReport, Site,
    SiteFaultEvent, SiteFaults, SiteId, SiteStats, WarmPool,
};
pub use forwarder::Forwarder;
pub use registry::{FunctionId, FunctionRegistry, FunctionSpec};
