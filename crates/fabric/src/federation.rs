//! Federated multi-broker fabric: per-site brokers, batched dispatch,
//! warm-container pools, and broker-peer takeover.
//!
//! The single [`crate::broker`] loop pays its dispatch overhead — the
//! admission scan, the candidate build, the endpoint policy scan, two
//! heap operations — once *per invocation*. This module promotes the
//! fabric to a funcX-style federation of **sites**: each site is a broker
//! owning a pool of endpoints (sites are derived from
//! [`RegionPartition`] regions), and a [`Forwarder`] routes every
//! invocation to a site through the shared epoch-tagged route cache.
//!
//! # Batched dispatch
//!
//! Arrivals are buffered in a per-site ingress queue and *drained* in
//! batches: immediately once [`FederationCfg::batch`] invocations are
//! buffered, or after [`FederationCfg::drain_every`] of sim time,
//! whichever comes first. One drain pays the candidate refresh and batch
//! bookkeeping once for the whole batch; the admission gate is a
//! maintained O(1) counter instead of the baseline's per-arrival
//! O(endpoints) sum; and arrivals enter through a sorted cursor instead
//! of per-invocation heap events. Batching trades sim-time latency
//! (buffered invocations wait for the drain) for dispatch throughput —
//! exactly the funcX forwarder trade.
//!
//! # Warm-container pools
//!
//! [`WarmPool`] generalizes the per-endpoint [`ColdStart`] warm window to
//! a per-site LRU pool over *functions*: a function found in its site's
//! pool skips boot cost on any endpoint of the site; a miss pays
//! [`WarmPool::cold_time`] and evicts the least-recently-used entry. A
//! site crash flushes its pool (recovery comes back cold).
//!
//! # Broker-peer takeover
//!
//! [`SiteFaults`] crash and recover whole sites. A site crash kills the
//! running work on every member endpoint; after
//! [`SiteFaults::heartbeat`], the federation *detects* the outage and a
//! surviving peer site (fewest outstanding, ties by id) **adopts** the
//! dead site's displaced work — orphans, queued work, and buffered
//! ingress — through the forwarding layer, entering the peer's ingress
//! as one batch instead of per-invocation backoff. Only when no peer
//! survives does displaced work fall back to the single-broker
//! backoff-and-retry path. This generalizes the PR-2 broker-restart
//! failover to peer takeover.
//!
//! # Equivalence oracle
//!
//! A federation with **one site and batch size 1** (no warm pool, no site
//! faults) must be *bit-identical* to [`run_fabric_faulty`] /
//! [`run_fabric_admission`]: same completions, same latencies in the same
//! order, same retry/reroute/drop counters, same slot-seconds. The
//! engine is written around that invariant — shared endpoint-state
//! constructor, same event ordering (arrivals before same-time events,
//! fault events before same-time runtime events), the same policy scans,
//! and route lookups whose cached results are exactly what the baseline
//! recomputes. `tests/proptests.rs` pins the identity across random
//! loads, fault schedules, admission caps, and policies; the `fabric`
//! bench asserts it again before timing.

use crate::broker::{
    ep_states, Admission, Autoscale, Backoff, ColdStart, Endpoint, EndpointFaults, EpState,
    FabricReport, Invocation, RoutingPolicy,
};
use crate::forwarder::Forwarder;
use crate::registry::{FunctionId, FunctionRegistry, FunctionSpec};
use continuum_net::{NodeId, RegionPartition};
use continuum_obs::{HealthPlane, HealthReport, HealthSpec};
use continuum_placement::Env;
use continuum_sim::{jain_fairness, EventQueue, FaultKind, Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

// Re-exported here for rustdoc links.
#[allow(unused_imports)]
use crate::broker::run_fabric_admission;
#[allow(unused_imports)]
use crate::broker::run_fabric_faulty;

/// Identifier of a federation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// One federation site: a broker plus the endpoint pool it owns.
#[derive(Debug, Clone)]
pub struct Site {
    /// This site's id (== its index in the site slice).
    pub id: SiteId,
    /// The broker's home node — forwarding-cost estimates target it.
    pub broker: NodeId,
    /// Partition regions this site covers (empty when built without a
    /// partition, e.g. [`single_site`]).
    pub regions: Vec<u32>,
    /// Indices into the run's endpoint slice, ascending.
    pub endpoints: Vec<usize>,
}

/// Derive sites from a [`RegionPartition`]: endpoints group by the region
/// of their device's node, and regions are dealt round-robin onto at most
/// `max_sites` sites (so a sweep can vary site count over one world).
/// Regions without endpoints vanish; site ids are re-indexed densely.
/// Each site's broker lives on its first endpoint's node.
///
/// With `max_sites == 1` this returns a single site owning every endpoint
/// in index order — the federation arm comparable to the single broker.
pub fn sites_from_partition(
    env: &Env,
    partition: &RegionPartition,
    endpoints: &[Endpoint],
    max_sites: usize,
) -> Vec<Site> {
    assert!(max_sites >= 1, "max_sites must be at least 1");
    assert!(!endpoints.is_empty(), "no endpoints");
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_sites];
    let mut bucket_regions: Vec<Vec<u32>> = vec![Vec::new(); max_sites];
    for (i, ep) in endpoints.iter().enumerate() {
        let r = partition.region_of(env.node_of(ep.device));
        let b = r % max_sites;
        buckets[b].push(i);
        if !bucket_regions[b].contains(&(r as u32)) {
            bucket_regions[b].push(r as u32);
        }
    }
    let mut sites = Vec::new();
    for (eps_in, regions) in buckets.into_iter().zip(bucket_regions) {
        if eps_in.is_empty() {
            continue;
        }
        sites.push(Site {
            id: SiteId(sites.len() as u32),
            broker: env.node_of(endpoints[eps_in[0]].device),
            regions,
            endpoints: eps_in,
        });
    }
    sites
}

/// One site owning every endpoint — the centralized arm of a federated
/// sweep and the shape the equivalence oracle runs in.
pub fn single_site(env: &Env, endpoints: &[Endpoint]) -> Vec<Site> {
    assert!(!endpoints.is_empty(), "no endpoints");
    vec![Site {
        id: SiteId(0),
        broker: env.node_of(endpoints[0].device),
        regions: Vec::new(),
        endpoints: (0..endpoints.len()).collect(),
    }]
}

/// Per-site warm-container pool: an LRU set of functions whose containers
/// are resident somewhere on the site.
///
/// Replaces the per-endpoint [`ColdStart`] warm window when set on
/// [`FederationCfg`]: an invocation whose function is pooled starts warm
/// on *any* endpoint of the site; a miss pays `cold_time` and inserts the
/// function, evicting the least-recently-used entry past `capacity`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WarmPool {
    /// Distinct functions kept warm per site (0 = everything runs cold).
    pub capacity: usize,
    /// Boot tax paid by a pool miss.
    pub cold_time: SimDuration,
}

/// One timed site-level fault transition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SiteFaultEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Site index.
    pub site: u32,
    /// `true` = crash, `false` = recover.
    pub crash: bool,
}

/// Site-level fault injection: whole-broker outages with peer takeover.
#[derive(Debug, Clone)]
pub struct SiteFaults {
    /// Timed crash/recover transitions, any order (the queue sorts).
    pub events: Vec<SiteFaultEvent>,
    /// How long after a site crash the federation notices and a peer
    /// adopts the dead site's work.
    pub heartbeat: SimDuration,
    /// Re-route pacing when *no* peer survives to adopt.
    pub backoff: Backoff,
    /// Jitter seed (used only when endpoint faults are absent).
    pub seed: u64,
}

impl SiteFaults {
    /// Build site faults from region-level outage transitions — the shape
    /// `continuum_runtime::FaultPlane::site_transitions` produces from a
    /// device-level chaos schedule. Transitions for regions no site
    /// covers are dropped. With one-region sites (i.e. `max_sites` at
    /// least the region count) the mapping is exact; a multi-region site
    /// crashes when any of its regions fully dies, which over-approximates
    /// the outage.
    pub fn from_region_transitions(
        sites: &[Site],
        transitions: &[(SimTime, u32, bool)],
        heartbeat: SimDuration,
        backoff: Backoff,
        seed: u64,
    ) -> SiteFaults {
        let events = transitions
            .iter()
            .filter_map(|&(at, region, crash)| {
                sites
                    .iter()
                    .position(|site| site.regions.contains(&region))
                    .map(|s| SiteFaultEvent {
                        at,
                        site: s as u32,
                        crash,
                    })
            })
            .collect();
        SiteFaults {
            events,
            heartbeat,
            backoff,
            seed,
        }
    }
}

/// Configuration of one federation run.
#[derive(Debug, Clone)]
pub struct FederationCfg {
    /// Endpoint- and site-level routing policy.
    pub policy: RoutingPolicy,
    /// Invocations buffered per site before an immediate drain (1 =
    /// per-invocation dispatch, the oracle-comparable setting).
    pub batch: usize,
    /// Longest a buffered invocation waits before a timer drain.
    pub drain_every: SimDuration,
    /// Per-endpoint cold-start window (the single-broker model); ignored
    /// when `warm_pool` is set.
    pub cold: Option<ColdStart>,
    /// Per-site warm-container pool (overrides `cold`).
    pub warm_pool: Option<WarmPool>,
    /// Elastic slot provisioning, as in the single broker.
    pub autoscale: Option<Autoscale>,
    /// Endpoint-level fault injection, as in the single broker.
    pub faults: Option<EndpointFaults>,
    /// Site-level fault injection with peer takeover.
    pub site_faults: Option<SiteFaults>,
    /// Admission control; the in-system count additionally includes
    /// buffered ingress, so batching cannot grow memory past the cap.
    pub admission: Option<Admission>,
    /// Attach an SLO health plane: burn-rate windows over the
    /// completion stream, per-site queue-depth and warm-pool gauges
    /// sampled into a flight recorder, anomalies on takeover and
    /// admission saturation. `None` (the default) leaves the run
    /// bit-identical to one without health accounting.
    pub health: Option<HealthSpec>,
}

impl FederationCfg {
    /// Per-invocation dispatch (batch 1), no cold start, no autoscale, no
    /// faults, no admission — the shape bit-comparable to `run_fabric`.
    pub fn new(policy: RoutingPolicy) -> FederationCfg {
        FederationCfg {
            policy,
            batch: 1,
            drain_every: SimDuration::from_millis(10),
            cold: None,
            warm_pool: None,
            autoscale: None,
            faults: None,
            site_faults: None,
            admission: None,
            health: None,
        }
    }
}

/// Per-site counters of one federation run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SiteStats {
    /// Invocations completed by this site's endpoints.
    pub completions: u64,
    /// Invocations the forwarder routed to this site on arrival.
    pub forwarded: u64,
    /// Displaced invocations adopted from crashed peers.
    pub adopted: u64,
    /// Ingress drains executed.
    pub drains: u64,
    /// Invocations dispatched through drains (sum of batch occupancy).
    pub batched: u64,
    /// Warm-pool hits (starts that skipped boot cost).
    pub warm_hits: u64,
    /// Warm-pool misses (starts that paid `WarmPool::cold_time`).
    pub cold_boots: u64,
}

/// Result of a federation run: the single-broker-compatible
/// [`FabricReport`] plus federation-level counters.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// The oracle-comparable aggregate (completions, latencies in
    /// completion order, per-endpoint counts, retry/drop counters).
    pub fabric: FabricReport,
    /// Per-site counters, indexed by site id.
    pub sites: Vec<SiteStats>,
    /// Site outages whose displaced work a surviving peer adopted.
    pub takeovers: u64,
    /// Site crash events applied.
    pub site_crashes: u64,
    /// Site outages detected (heartbeat expired while still down).
    pub site_detections: u64,
    /// Site recover events applied.
    pub site_recoveries: u64,
    /// Ingress drains across all sites.
    pub drains: u64,
    /// Invocations dispatched through drains.
    pub batched: u64,
    /// Largest single drain.
    pub max_batch: u64,
    /// Forwarder route-cache hits.
    pub route_hits: u64,
    /// Forwarder route-cache misses.
    pub route_misses: u64,
    /// SLO burn-rate summary and flight-recorder timeline; present iff
    /// [`FederationCfg::health`] was set. Not part of the
    /// oracle-comparable surface (identity checks compare `fabric`).
    pub health: Option<HealthReport>,
}

/// Per-invocation federation state.
struct FedInv {
    assigned: usize,
    epoch: u32,
    attempts: u32,
    exec_start: SimTime,
    done_at: Option<SimTime>,
    /// Work displaced by a crash and awaiting (re-)dispatch: counts as a
    /// reroute (and bumps the epoch) when it next assigns.
    displaced: bool,
}

/// Per-site federation state.
struct SiteState {
    up: bool,
    /// Down *and* past the site heartbeat: excluded from forwarding.
    known_down: bool,
    /// Crash generation, to match site-detect events to the outage.
    gen: u32,
    /// Buffered arrivals awaiting the next drain.
    ingress: VecDeque<usize>,
    /// A timer drain is scheduled and not yet fired.
    drain_pending: bool,
    /// Site-local round-robin cursor.
    rr_ep: usize,
    /// Member endpoints not known-down, ascending — rebuilt only on
    /// routability transitions, so drains skip the per-invocation
    /// candidate build the single broker pays.
    cand: Vec<usize>,
    /// Warm-pool LRU (front = least recently used).
    warm: Vec<FunctionId>,
    stats: SiteStats,
}

#[derive(Debug)]
enum FEv {
    /// Request payload landed at `ep` (stale on `epoch` mismatch).
    InputReady {
        ep: usize,
        inv: usize,
        epoch: u32,
    },
    /// Execution finished (stale if the attempt was killed).
    ExecDone {
        ep: usize,
        inv: usize,
        epoch: u32,
    },
    ResponseBack {
        inv: usize,
    },
    EpCrash(usize),
    EpRecover(usize),
    EpDetect {
        ep: usize,
        gen: u32,
    },
    /// A displaced invocation's backoff expired; re-forward it.
    Reroute(usize),
    /// Timer drain of one site's ingress buffer.
    Drain(usize),
    SiteCrash(usize),
    SiteRecover(usize),
    /// Site heartbeat expired: adopt the dead site's work on a peer.
    SiteDetect {
        site: usize,
        gen: u32,
    },
}

/// Run a set of invocations through a federated fabric.
///
/// `sites` must partition `endpoints` (every endpoint in exactly one
/// site). See the module docs for semantics; `completed + dropped +
/// rejected == invocations.len()` always holds on the report, and the
/// 1-site/batch-1 arm is bit-identical to [`run_fabric_admission`].
#[allow(clippy::too_many_lines)]
pub fn run_federation(
    env: &Env,
    registry: &FunctionRegistry,
    endpoints: &[Endpoint],
    sites: &[Site],
    invocations: &[Invocation],
    cfg: &FederationCfg,
) -> FederationReport {
    assert!(!endpoints.is_empty(), "no endpoints");
    assert!(!sites.is_empty(), "no sites");
    let n_ep = endpoints.len();
    let n_sites = sites.len();
    let batch = cfg.batch.max(1);

    let mut ep_site = vec![usize::MAX; n_ep];
    for (s, site) in sites.iter().enumerate() {
        for &e in &site.endpoints {
            assert!(e < n_ep, "site {s} references endpoint {e} out of range");
            assert_eq!(ep_site[e], usize::MAX, "endpoint {e} owned by two sites");
            ep_site[e] = s;
        }
    }
    assert!(
        ep_site.iter().all(|&s| s != usize::MAX),
        "every endpoint must belong to a site"
    );

    let mut queue: EventQueue<FEv> = EventQueue::new();
    let mut eps: Vec<EpState> = ep_states(endpoints, cfg.autoscale);
    let mut invs: Vec<FedInv> = invocations
        .iter()
        .map(|_| FedInv {
            assigned: usize::MAX,
            epoch: 0,
            attempts: 0,
            exec_start: SimTime::ZERO,
            done_at: None,
            displaced: false,
        })
        .collect();
    let mut st: Vec<SiteState> = sites
        .iter()
        .map(|site| SiteState {
            up: true,
            known_down: false,
            gen: 0,
            ingress: VecDeque::new(),
            drain_pending: false,
            rr_ep: 0,
            cand: site.endpoints.clone(),
            warm: Vec::new(),
            stats: SiteStats::default(),
        })
        .collect();
    let mut site_live: Vec<bool> = st.iter().map(|s| !s.cand.is_empty()).collect();
    let mut site_out: Vec<u64> = vec![0; n_sites];
    let brokers: Vec<NodeId> = sites.iter().map(|s| s.broker).collect();
    let mut fwd = Forwarder::new();

    let mut latencies: Vec<f64> = Vec::with_capacity(invocations.len());
    let mut reroutes = 0u64;
    let mut retries = 0u64;
    let mut dropped = 0u64;
    let mut rejected = 0u64;
    let mut lost_work_s = 0.0f64;
    // Maintained in-system count (assigned + buffered): the O(1)
    // admission gate. The 1-site/batch-1 value at arrival time equals the
    // baseline's per-arrival sum over endpoint outstanding exactly.
    let mut in_system = 0usize;
    // Jitter stream: endpoint-fault seed when present (baseline
    // compatible), else the site-fault seed.
    let mut jitter_rng = Rng::new(
        cfg.faults
            .as_ref()
            .map(|f| f.seed)
            .or_else(|| cfg.site_faults.as_ref().map(|sf| sf.seed))
            .unwrap_or(0),
    );
    let backoff_cfg: Option<Backoff> = cfg
        .faults
        .as_ref()
        .map(|f| f.backoff)
        .or_else(|| cfg.site_faults.as_ref().map(|sf| sf.backoff));
    let tele = continuum_obs::ambient();
    let trace_on = tele
        .as_deref()
        .is_some_and(continuum_obs::Telemetry::trace_enabled);
    let mut health = cfg.health.as_ref().map(HealthPlane::new);
    let mut saturated = false;
    // Per-site thread tracks: tid 1 is the forwarder/fabric control
    // track, each site gets its own. Named up front (M metadata) so
    // federated traces open with readable track names.
    const SITE_TID_BASE: u32 = 200;
    if trace_on {
        if let Some(t) = tele.as_deref() {
            t.tracer.thread_name(t.pid(), 1, "fabric");
            for s in 0..n_sites {
                t.tracer
                    .thread_name(t.pid(), SITE_TID_BASE + s as u32, format!("site {s}"));
            }
        }
    }
    let mut failovers = 0u64;
    let mut detections = 0u64;
    let mut recoveries = 0u64;
    let mut orphans_restarted = 0u64;
    let mut takeovers = 0u64;
    let mut site_crashes = 0u64;
    let mut site_detections = 0u64;
    let mut site_recoveries = 0u64;
    let mut drains = 0u64;
    let mut batched = 0u64;
    let mut max_batch = 0u64;

    // Arrival cursor: indices stably sorted by arrival time. Equal-time
    // arrivals keep index order and arrivals win ties against queue
    // events — exactly the baseline heap's (time, seq) order, without
    // two heap operations per invocation.
    let mut order: Vec<usize> = (0..invocations.len()).collect();
    order.sort_by_key(|&i| invocations[i].arrival);

    if let Some(f) = &cfg.faults {
        for ev in f.schedule.events() {
            let kind = match ev.kind {
                FaultKind::EndpointCrash => FEv::EpCrash(ev.target as usize),
                FaultKind::EndpointRecover => FEv::EpRecover(ev.target as usize),
                _ => continue, // device/link faults are not the broker's
            };
            assert!(
                (ev.target as usize) < n_ep,
                "fault schedule targets endpoint {} but only {n_ep} exist",
                ev.target
            );
            queue.schedule_at(ev.at, kind);
        }
    }
    if let Some(sf) = &cfg.site_faults {
        for ev in &sf.events {
            assert!(
                (ev.site as usize) < n_sites,
                "site fault targets site {} but only {n_sites} exist",
                ev.site
            );
            let kind = if ev.crash {
                FEv::SiteCrash(ev.site as usize)
            } else {
                FEv::SiteRecover(ev.site as usize)
            };
            queue.schedule_at(ev.at, kind);
        }
    }

    // Assign `i` to endpoint `ep` and launch its request payload.
    macro_rules! assign {
        ($i:expr, $ep:expr, $spec:expr, $now:expr) => {{
            let (i, ep, now) = ($i, $ep, $now);
            let spec = $spec;
            invs[i].assigned = ep;
            eps[ep].outstanding += 1;
            in_system += 1;
            site_out[ep_site[ep]] += 1;
            let dev = &env.fleet.device(endpoints[ep].device);
            let exec = dev
                .spec
                .compute_time_parallel(spec.work_flops, spec.parallelism);
            let tin = fwd
                .transfer(env, invocations[i].origin, dev.node, spec.in_bytes)
                .expect("disconnected topology");
            let lanes = &mut eps[ep].lane_est;
            let (k, _) = lanes
                .iter()
                .enumerate()
                .min_by_key(|&(i, t)| (*t, i))
                .expect("non-empty lanes");
            lanes[k] = (now + tin).max(lanes[k]) + exec;
            let epoch = invs[i].epoch;
            queue.schedule_at(now + tin, FEv::InputReady { ep, inv: i, epoch });
            if trace_on {
                if let Some(t) = tele.as_deref() {
                    // Arrow tail of the cross-site forwarder hop: picked
                    // up by the matching FlowEnd at `InputReady`.
                    let id = fed_flow_id(i, epoch);
                    let s = ep_site[ep];
                    t.tracer.flow_start(
                        format!("inv {i} -> site {s}"),
                        "xfer",
                        now.0,
                        t.pid(),
                        1,
                        id,
                    );
                    t.tracer
                        .instant(format!("dispatch inv {i}"), "xfer", now.0, t.pid(), 1);
                }
            }
        }};
    }

    // One backoff round for a displaced invocation (or give it up).
    macro_rules! backoff_or_drop {
        ($i:expr, $now:expr) => {{
            let (i, now) = ($i, $now);
            let cfg_b = backoff_cfg.expect("displacement implies faults");
            if invs[i].attempts >= cfg_b.max_retries {
                dropped += 1;
            } else {
                let delay = cfg_b.delay(invs[i].attempts, &mut jitter_rng);
                invs[i].attempts += 1;
                retries += 1;
                queue.schedule_at(now + delay, FEv::Reroute(i));
            }
        }};
    }

    // Rebuild one site's routable-candidate cache and liveness after a
    // known-down transition (rare; drains reuse the cached list).
    macro_rules! refresh_site {
        ($s:expr) => {{
            let s = $s;
            st[s].cand.clear();
            for &e in &sites[s].endpoints {
                if !eps[e].known_down {
                    st[s].cand.push(e);
                }
            }
            site_live[s] = st[s].up && !st[s].known_down && !st[s].cand.is_empty();
        }};
    }

    // Start queued work on `ep` while slots are free.
    macro_rules! try_start_ep {
        ($ep:expr, $now:expr) => {{
            let (ep, now) = ($ep, $now);
            if eps[ep].up {
                while eps[ep].scale.busy < eps[ep].scale.active {
                    let Some(inv) = eps[ep].waiting.pop_front() else {
                        break;
                    };
                    eps[ep].scale.busy += 1;
                    let spec = registry.get(invocations[inv].function);
                    let dev = &env.fleet.device(endpoints[ep].device);
                    let mut exec = dev
                        .spec
                        .compute_time_parallel(spec.work_flops, spec.parallelism);
                    if let Some(wp) = cfg.warm_pool {
                        // Site-level pool: warm anywhere on the site.
                        let s = ep_site[ep];
                        let func = invocations[inv].function;
                        if let Some(pos) = st[s].warm.iter().position(|&f| f == func) {
                            st[s].warm.remove(pos);
                            st[s].warm.push(func);
                            st[s].stats.warm_hits += 1;
                        } else {
                            exec += wp.cold_time;
                            st[s].stats.cold_boots += 1;
                            if wp.capacity > 0 {
                                st[s].warm.push(func);
                                if st[s].warm.len() > wp.capacity {
                                    st[s].warm.remove(0); // evict LRU
                                }
                            }
                        }
                    } else if let Some(cs) = cfg.cold {
                        // Endpoint-level warmth, exactly the baseline.
                        if now > eps[ep].warm_until {
                            exec += cs.cold_time;
                        }
                        eps[ep].warm_until = (now + exec) + cs.keep_warm;
                    }
                    invs[inv].exec_start = now;
                    eps[ep].running.push(inv);
                    let epoch = invs[inv].epoch;
                    queue.schedule_at(now + exec, FEv::ExecDone { ep, inv, epoch });
                }
            }
        }};
    }

    // Drain one site's ingress: the batched dispatch core. The candidate
    // list and batch bookkeeping are paid once per drain; per invocation
    // only the policy pick and the assign remain.
    macro_rules! drain {
        ($s:expr, $now:expr) => {{
            let (s, now) = ($s, $now);
            if !st[s].ingress.is_empty() {
                let k = st[s].ingress.len() as u64;
                drains += 1;
                batched += k;
                if k > max_batch {
                    max_batch = k;
                }
                st[s].stats.drains += 1;
                st[s].stats.batched += k;
                while let Some(i) = st[s].ingress.pop_front() {
                    in_system -= 1;
                    let Some(spec) = registry.try_get(invocations[i].function) else {
                        dropped += 1;
                        continue;
                    };
                    let mut rr = st[s].rr_ep;
                    let choice = choose_in_site(
                        env,
                        endpoints,
                        &eps,
                        &st[s].cand,
                        cfg.policy,
                        &mut rr,
                        spec,
                        invocations[i].origin,
                        now,
                        &mut fwd,
                    );
                    st[s].rr_ep = rr;
                    match choice {
                        Some(ep) => {
                            if invs[i].displaced {
                                invs[i].displaced = false;
                                reroutes += 1;
                                invs[i].epoch += 1;
                            }
                            assign!(i, ep, spec, now);
                        }
                        None => backoff_or_drop!(i, now),
                    }
                }
            }
        }};
    }

    // Buffer one invocation at site `s`, draining by fill or timer.
    macro_rules! enqueue {
        ($i:expr, $s:expr, $now:expr) => {{
            let (i, s, now) = ($i, $s, $now);
            in_system += 1;
            st[s].ingress.push_back(i);
            if batch <= 1 || st[s].ingress.len() >= batch {
                drain!(s, now);
            } else if !st[s].drain_pending {
                st[s].drain_pending = true;
                queue.schedule_at(now + cfg.drain_every, FEv::Drain(s));
            }
        }};
    }

    // Take a flight-recorder sample when one is due: per-site ingress
    // depth, outstanding count, and warm-pool hit rate.
    macro_rules! health_tick {
        ($now:expr) => {{
            if let Some(h) = health.as_mut() {
                let now: SimTime = $now;
                if h.due(now.0) {
                    let mut gauges: Vec<(String, f64)> = Vec::with_capacity(3 * n_sites);
                    for (s, site) in st.iter().enumerate() {
                        gauges.push((format!("site{s}.ingress"), site.ingress.len() as f64));
                        gauges.push((format!("site{s}.outstanding"), site_out[s] as f64));
                        let starts = site.stats.warm_hits + site.stats.cold_boots;
                        if starts > 0 {
                            gauges.push((
                                format!("site{s}.warm_hit_rate"),
                                site.stats.warm_hits as f64 / starts as f64,
                            ));
                        }
                    }
                    h.sample(now.0, gauges);
                }
            }
        }};
    }

    let mut next_arr = 0usize;
    loop {
        let arrival_next: Option<SimTime> = order.get(next_arr).map(|&i| invocations[i].arrival);
        let take_arrival = match (arrival_next, queue.peek_time()) {
            (Some(a), Some(q)) => a <= q,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_arrival {
            let i = order[next_arr];
            next_arr += 1;
            let now = invocations[i].arrival;
            health_tick!(now);
            // Admission gate, then forward to a site.
            if let Some(a) = cfg.admission {
                if in_system >= a.max_outstanding {
                    rejected += 1;
                    if let Some(h) = health.as_mut() {
                        // One anomaly per saturation episode.
                        if !saturated {
                            h.anomaly(now.0, "saturation");
                        }
                    }
                    saturated = true;
                    continue;
                }
            }
            saturated = false;
            let spec = registry.get(invocations[i].function);
            match fwd.choose_site(
                env,
                cfg.policy,
                &site_live,
                &site_out,
                &brokers,
                invocations[i].origin,
                spec.in_bytes,
            ) {
                Some(s) => {
                    st[s].stats.forwarded += 1;
                    enqueue!(i, s, now);
                }
                None => backoff_or_drop!(i, now),
            }
            continue;
        }
        let Some((now, ev)) = queue.pop() else { break };
        match ev {
            FEv::InputReady { ep, inv, epoch } => {
                if epoch != invs[inv].epoch {
                    continue; // re-routed while the payload was in flight
                }
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        // Arrow head of the forwarder hop started at
                        // `assign!` (same id, same name).
                        let s = ep_site[ep];
                        let tid = SITE_TID_BASE + s as u32;
                        t.tracer.flow_end(
                            format!("inv {inv} -> site {s}"),
                            "xfer",
                            now.0,
                            t.pid(),
                            tid,
                            fed_flow_id(inv, epoch),
                        );
                        t.tracer
                            .instant(format!("arrive inv {inv}"), "xfer", now.0, t.pid(), tid);
                    }
                }
                if eps[ep].known_down {
                    // Payload landed on an endpoint already declared dead.
                    eps[ep].outstanding -= 1;
                    in_system -= 1;
                    site_out[ep_site[ep]] -= 1;
                    backoff_or_drop!(inv, now);
                    continue;
                }
                eps[ep].waiting.push_back(inv);
                if cfg.autoscale.is_some() && eps[ep].up {
                    let stx = &mut eps[ep].scale;
                    if stx.busy >= stx.active && stx.active < endpoints[ep].slots {
                        stx.grow(now);
                    }
                }
                try_start_ep!(ep, now);
            }
            FEv::ExecDone { ep, inv, epoch } => {
                if epoch != invs[inv].epoch {
                    continue; // this attempt was killed by a crash
                }
                eps[ep].scale.busy -= 1;
                let pos = eps[ep]
                    .running
                    .iter()
                    .position(|&r| r == inv)
                    .expect("finished invocation is running");
                eps[ep].running.swap_remove(pos);
                let spec = registry.get(invocations[inv].function);
                let ep_node = env.fleet.device(endpoints[ep].device).node;
                let tout = fwd
                    .transfer(env, ep_node, invocations[inv].origin, spec.out_bytes)
                    .expect("disconnected topology");
                queue.schedule_at(now + tout, FEv::ResponseBack { inv });
                try_start_ep!(ep, now);
                if let Some(a) = cfg.autoscale {
                    if eps[ep].waiting.is_empty() {
                        let floor = a.min_slots.min(endpoints[ep].slots).max(1);
                        let stx = &mut eps[ep].scale;
                        stx.shrink_to(stx.busy.max(floor), now);
                    }
                }
            }
            FEv::ResponseBack { inv } => {
                let ep = invs[inv].assigned;
                eps[ep].outstanding -= 1;
                in_system -= 1;
                site_out[ep_site[ep]] -= 1;
                eps[ep].completions += 1;
                st[ep_site[ep]].stats.completions += 1;
                invs[inv].done_at = Some(now);
                latencies.push(now.since(invocations[inv].arrival).as_secs_f64());
                if let Some(h) = health.as_mut() {
                    h.observe(now.0, now.since(invocations[inv].arrival).0);
                }
                health_tick!(now);
            }
            FEv::EpCrash(ep) => {
                if !eps[ep].up {
                    continue;
                }
                failovers += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer
                            .instant(format!("ep {ep} crash"), "fabric", now.0, t.pid(), 1);
                    }
                }
                let e = &mut eps[ep];
                e.up = false;
                e.gen += 1;
                for inv in std::mem::take(&mut e.running) {
                    lost_work_s += now.since(invs[inv].exec_start).as_secs_f64();
                    invs[inv].epoch += 1;
                    e.orphans.push(inv);
                }
                e.scale.settle(now);
                e.scale.active = 0;
                e.scale.busy = 0;
                e.warm_until = SimTime::ZERO; // recovery comes back cold
                let gen = e.gen;
                let hb = cfg
                    .faults
                    .as_ref()
                    .expect("crash event implies faults")
                    .heartbeat;
                queue.schedule_at(now + hb, FEv::EpDetect { ep, gen });
            }
            FEv::EpDetect { ep, gen } => {
                if eps[ep].up || eps[ep].gen != gen {
                    continue; // recovered (or crashed again) meanwhile
                }
                detections += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer.instant(
                            format!("ep {ep} detected down"),
                            "fabric",
                            now.0,
                            t.pid(),
                            1,
                        );
                    }
                }
                eps[ep].known_down = true;
                let mut displaced: Vec<usize> = eps[ep].orphans.drain(..).collect();
                displaced.extend(eps[ep].waiting.drain(..));
                for inv in displaced {
                    eps[ep].outstanding -= 1;
                    in_system -= 1;
                    site_out[ep_site[ep]] -= 1;
                    backoff_or_drop!(inv, now);
                }
                refresh_site!(ep_site[ep]);
            }
            FEv::EpRecover(ep) => {
                if eps[ep].up {
                    continue;
                }
                recoveries += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer
                            .instant(format!("ep {ep} recover"), "fabric", now.0, t.pid(), 1);
                    }
                }
                let e = &mut eps[ep];
                e.up = true;
                e.known_down = false;
                e.scale.settle(now);
                e.scale.active = match cfg.autoscale {
                    Some(a) => a.min_slots.min(endpoints[ep].slots).max(1),
                    None => endpoints[ep].slots,
                };
                debug_assert_eq!(e.scale.busy, 0);
                for inv in std::mem::take(&mut e.orphans) {
                    orphans_restarted += 1;
                    e.waiting.push_back(inv);
                }
                try_start_ep!(ep, now);
                refresh_site!(ep_site[ep]);
            }
            FEv::Reroute(i) => {
                let Some(spec) = registry.try_get(invocations[i].function) else {
                    dropped += 1;
                    continue;
                };
                match fwd.choose_site(
                    env,
                    cfg.policy,
                    &site_live,
                    &site_out,
                    &brokers,
                    invocations[i].origin,
                    spec.in_bytes,
                ) {
                    Some(s) => {
                        let mut rr = st[s].rr_ep;
                        let choice = choose_in_site(
                            env,
                            endpoints,
                            &eps,
                            &st[s].cand,
                            cfg.policy,
                            &mut rr,
                            spec,
                            invocations[i].origin,
                            now,
                            &mut fwd,
                        );
                        st[s].rr_ep = rr;
                        match choice {
                            Some(ep) => {
                                reroutes += 1;
                                invs[i].epoch += 1;
                                invs[i].displaced = false;
                                assign!(i, ep, spec, now);
                            }
                            None => backoff_or_drop!(i, now),
                        }
                    }
                    None => backoff_or_drop!(i, now),
                }
            }
            FEv::Drain(s) => {
                st[s].drain_pending = false;
                drain!(s, now);
            }
            FEv::SiteCrash(s) => {
                if !st[s].up {
                    continue;
                }
                site_crashes += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer
                            .instant(format!("site {s} crash"), "fabric", now.0, t.pid(), 1);
                    }
                }
                st[s].up = false;
                st[s].gen += 1;
                st[s].warm.clear(); // the pool dies with the site
                for &ep in &sites[s].endpoints {
                    if !eps[ep].up {
                        continue; // already down via an endpoint fault
                    }
                    let e = &mut eps[ep];
                    e.up = false;
                    e.gen += 1; // invalidates any pending endpoint detect
                    for inv in std::mem::take(&mut e.running) {
                        lost_work_s += now.since(invs[inv].exec_start).as_secs_f64();
                        invs[inv].epoch += 1;
                        e.orphans.push(inv);
                    }
                    e.scale.settle(now);
                    e.scale.active = 0;
                    e.scale.busy = 0;
                    e.warm_until = SimTime::ZERO;
                }
                refresh_site!(s);
                let gen = st[s].gen;
                let hb = cfg
                    .site_faults
                    .as_ref()
                    .expect("site crash implies site faults")
                    .heartbeat;
                queue.schedule_at(now + hb, FEv::SiteDetect { site: s, gen });
            }
            FEv::SiteDetect { site: s, gen } => {
                if st[s].up || st[s].gen != gen {
                    continue; // recovered (or crashed again) meanwhile
                }
                site_detections += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer.instant(
                            format!("site {s} detected down"),
                            "fabric",
                            now.0,
                            t.pid(),
                            1,
                        );
                    }
                }
                st[s].known_down = true;
                // Collect everything the dead site holds: per-endpoint
                // orphans and queues, then the buffered ingress.
                let mut displaced: Vec<usize> = Vec::new();
                for &ep in &sites[s].endpoints {
                    eps[ep].known_down = true;
                    let mut d: Vec<usize> = eps[ep].orphans.drain(..).collect();
                    d.extend(eps[ep].waiting.drain(..));
                    for inv in d {
                        eps[ep].outstanding -= 1;
                        in_system -= 1;
                        site_out[s] -= 1;
                        invs[inv].displaced = true;
                        displaced.push(inv);
                    }
                }
                while let Some(i) = st[s].ingress.pop_front() {
                    in_system -= 1;
                    invs[i].displaced = true;
                    displaced.push(i);
                }
                st[s].drain_pending = false;
                refresh_site!(s);
                // Broker-peer takeover: the least-loaded surviving site
                // adopts the displaced work through the forwarding layer,
                // as one ingress batch. Backoff is the last resort.
                let adopt = (0..n_sites)
                    .filter(|&x| site_live[x])
                    .min_by_key(|&x| (site_out[x], x));
                match adopt {
                    Some(a) if !displaced.is_empty() => {
                        takeovers += 1;
                        st[a].stats.adopted += displaced.len() as u64;
                        if let Some(h) = health.as_mut() {
                            h.anomaly(now.0, "takeover");
                        }
                        if trace_on {
                            if let Some(t) = tele.as_deref() {
                                t.tracer.instant(
                                    format!("site {a} takes over site {s}"),
                                    "fabric",
                                    now.0,
                                    t.pid(),
                                    1,
                                );
                            }
                        }
                        for i in displaced {
                            enqueue!(i, a, now);
                        }
                    }
                    _ => {
                        for i in displaced {
                            backoff_or_drop!(i, now);
                        }
                    }
                }
            }
            FEv::SiteRecover(s) => {
                if st[s].up {
                    continue;
                }
                site_recoveries += 1;
                if trace_on {
                    if let Some(t) = tele.as_deref() {
                        t.tracer
                            .instant(format!("site {s} recover"), "fabric", now.0, t.pid(), 1);
                    }
                }
                st[s].up = true;
                st[s].known_down = false;
                for &ep in &sites[s].endpoints {
                    if eps[ep].up {
                        // Came back individually while the site was down;
                        // clear any suspicion left by site detection.
                        eps[ep].known_down = false;
                        continue;
                    }
                    let e = &mut eps[ep];
                    e.up = true;
                    e.known_down = false;
                    e.scale.settle(now);
                    e.scale.active = match cfg.autoscale {
                        Some(a) => a.min_slots.min(endpoints[ep].slots).max(1),
                        None => endpoints[ep].slots,
                    };
                    debug_assert_eq!(e.scale.busy, 0);
                    // Orphans not yet displaced restart in place.
                    for inv in std::mem::take(&mut e.orphans) {
                        orphans_restarted += 1;
                        e.waiting.push_back(inv);
                    }
                    try_start_ep!(ep, now);
                }
                refresh_site!(s);
                // Work buffered before an undetected crash dispatches now.
                drain!(s, now);
            }
        }
    }

    let end_time = invs
        .iter()
        .filter_map(|s| s.done_at)
        .max()
        .unwrap_or(SimTime::ZERO);
    let completed = latencies.len() as u64;
    debug_assert_eq!(
        completed + dropped + rejected,
        invocations.len() as u64,
        "invocation conservation"
    );
    debug_assert_eq!(in_system, 0, "in-system count settles to zero");
    let span = end_time.as_secs_f64();
    let slot_seconds: f64 = eps
        .iter_mut()
        .map(|e| {
            e.scale.settle(end_time);
            e.scale.slot_seconds
        })
        .sum();
    let per_endpoint: Vec<u64> = eps.iter().map(|e| e.completions).collect();
    let fabric = FabricReport {
        completed,
        throughput_hz: if span > 0.0 {
            completed as f64 / span
        } else {
            0.0
        },
        jain: jain_fairness(&per_endpoint.iter().map(|&c| c as f64).collect::<Vec<_>>()),
        per_endpoint,
        latencies_s: latencies,
        end_time,
        slot_seconds,
        reroutes,
        retries,
        dropped,
        rejected,
        lost_work_s,
    };
    let cache = fwd.cache_stats();
    let health_report = health.map(|h| h.finish(end_time.0));
    if let Some(t) = tele.as_deref() {
        let m = &t.metrics;
        m.inc("fabric.invocations", invocations.len() as u64);
        m.inc("fabric.completed", completed);
        m.record("fabric.reroutes", reroutes);
        m.record("fabric.retries", retries);
        m.record("fabric.dropped", dropped);
        m.record("fabric.rejected", rejected);
        m.record("fabric.failovers", failovers);
        m.record("fabric.detections", detections);
        m.record("fabric.recoveries", recoveries);
        m.record("fabric.orphans_restarted", orphans_restarted);
        m.set_gauge("fabric.lost_work_s", lost_work_s);
        if span > 0.0 {
            m.set_gauge("fabric.throughput_hz", completed as f64 / span);
        }
        for (ep, &c) in fabric.per_endpoint.iter().enumerate() {
            m.inc_labeled("fabric.endpoint_completions", ep as u32, c);
        }
        let mut snap = continuum_obs::MetricsSnapshot::new();
        snap.merge_histogram("fabric.latency", &fabric.latency_histogram());
        m.absorb(&snap);
        // Federation-level counters.
        m.record("fabric.site.takeovers", takeovers);
        m.record("fabric.site.crashes", site_crashes);
        m.record("fabric.site.detections", site_detections);
        m.record("fabric.site.recoveries", site_recoveries);
        for (s, site) in st.iter().enumerate() {
            m.inc_labeled("fabric.site.completions", s as u32, site.stats.completions);
            m.inc_labeled("fabric.site.forwarded", s as u32, site.stats.forwarded);
            m.inc_labeled("fabric.site.adopted", s as u32, site.stats.adopted);
            m.inc_labeled("fabric.site.warm_hits", s as u32, site.stats.warm_hits);
            m.inc_labeled("fabric.site.cold_boots", s as u32, site.stats.cold_boots);
        }
        m.record("fabric.batch.drains", drains);
        m.record("fabric.batch.dispatched", batched);
        m.set_gauge("fabric.batch.max", max_batch as f64);
        m.set_gauge(
            "fabric.batch.mean",
            if drains > 0 {
                batched as f64 / drains as f64
            } else {
                0.0
            },
        );
        fwd.publish_metrics(m, "fabric.forwarder");
        if let Some(hr) = &health_report {
            hr.publish(m);
        }
    }
    FederationReport {
        fabric,
        sites: st.into_iter().map(|x| x.stats).collect(),
        takeovers,
        site_crashes,
        site_detections,
        site_recoveries,
        drains,
        batched,
        max_batch,
        route_hits: cache.hits,
        route_misses: cache.misses,
        health: health_report,
    }
}

/// Deterministic flow-event id for one forwarder hop: a splitmix64-style
/// mix of the invocation index and its dispatch epoch, so the arrow tail
/// (at `assign!`) and head (at `InputReady`) compute the same id
/// independently and re-dispatches get fresh arrows.
fn fed_flow_id(inv: usize, epoch: u32) -> u64 {
    let mut z = (inv as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(epoch));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pick an endpoint among a site's `candidates` under `policy`; `None`
/// iff the candidate set is empty. Mirrors the single broker's
/// `choose_endpoint` exactly, with the route lookups going through the
/// forwarder's cache (bit-identical results, amortized cost).
#[allow(clippy::too_many_arguments)]
fn choose_in_site(
    env: &Env,
    endpoints: &[Endpoint],
    eps: &[EpState],
    candidates: &[usize],
    policy: RoutingPolicy,
    rr_next: &mut usize,
    spec: &FunctionSpec,
    origin: NodeId,
    now: SimTime,
    fwd: &mut Forwarder,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    Some(match policy {
        RoutingPolicy::RoundRobin => {
            let ep = candidates[*rr_next % candidates.len()];
            *rr_next += 1;
            ep
        }
        RoutingPolicy::LeastOutstanding => candidates
            .iter()
            .copied()
            .min_by_key(|&e| (eps[e].outstanding, e))
            .expect("candidates non-empty"),
        RoutingPolicy::Locality => {
            candidates
                .iter()
                .copied()
                .map(|e| {
                    let dev = &env.fleet.device(endpoints[e].device);
                    let ep_node = dev.node;
                    let tin = fwd
                        .transfer(env, origin, ep_node, spec.in_bytes)
                        .expect("disconnected topology");
                    let tout = fwd
                        .transfer(env, ep_node, origin, spec.out_bytes)
                        .expect("disconnected topology");
                    let exec = dev
                        .spec
                        .compute_time_parallel(spec.work_flops, spec.parallelism);
                    let mut lanes = eps[e].lane_est.clone();
                    lanes.sort_unstable();
                    let start = (now + tin).max(lanes[0]);
                    (start + exec + tout, e)
                })
                .min()
                .expect("candidates non-empty")
                .1
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{endpoints_on, run_fabric, run_fabric_admission};
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, continuum_regions, ContinuumSpec, Tier};

    fn world() -> (Env, RegionPartition, Vec<NodeId>) {
        let spec = ContinuumSpec::default();
        let built = continuum(&spec);
        let sensors = built.sensors.clone();
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let partition = RegionPartition::new(&env.topology, continuum_regions(&spec), 0);
        (env, partition, sensors)
    }

    fn workload(
        env: &Env,
        sensors: &[NodeId],
        n: usize,
        rate: f64,
        seed: u64,
    ) -> (FunctionRegistry, Vec<Endpoint>, Vec<Invocation>) {
        let mut registry = FunctionRegistry::new();
        let f = registry.register("infer", 5e9, 200 << 10, 1 << 10);
        let mut devices = env.fleet.in_tier(Tier::Fog);
        devices.extend(env.fleet.in_tier(Tier::Cloud));
        let endpoints = endpoints_on(env, &devices);
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        (registry, endpoints, invocations)
    }

    #[test]
    fn sites_from_partition_covers_endpoints_disjointly() {
        let (env, partition, _) = world();
        let mut devices = env.fleet.in_tier(Tier::Fog);
        devices.extend(env.fleet.in_tier(Tier::Cloud));
        let endpoints = endpoints_on(&env, &devices);
        for max_sites in [1, 2, 4, 64] {
            let sites = sites_from_partition(&env, &partition, &endpoints, max_sites);
            assert!(!sites.is_empty() && sites.len() <= max_sites);
            let mut seen = vec![false; endpoints.len()];
            for (s, site) in sites.iter().enumerate() {
                assert_eq!(site.id, SiteId(s as u32));
                assert!(site.endpoints.windows(2).all(|w| w[0] < w[1]), "ascending");
                for &e in &site.endpoints {
                    assert!(!seen[e], "endpoint {e} in two sites");
                    seen[e] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "every endpoint owned");
        }
        let one = sites_from_partition(&env, &partition, &endpoints, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].endpoints.len(), endpoints.len());
    }

    #[test]
    fn one_site_batch_one_is_bit_identical_to_single_broker() {
        let (env, partition, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 300, 120.0, 42);
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ] {
            let oracle = run_fabric(&env, &registry, &endpoints, &invocations, policy);
            for sites in [
                single_site(&env, &endpoints),
                sites_from_partition(&env, &partition, &endpoints, 1),
            ] {
                let fed = run_federation(
                    &env,
                    &registry,
                    &endpoints,
                    &sites,
                    &invocations,
                    &FederationCfg::new(policy),
                );
                assert_eq!(fed.fabric, oracle, "{}", policy.label());
            }
        }
    }

    #[test]
    fn one_site_batch_one_identity_with_admission_cold_autoscale() {
        let (env, _, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 400, 400.0, 7);
        let cold = Some(ColdStart {
            cold_time: SimDuration::from_millis(500),
            keep_warm: SimDuration::from_secs(2),
        });
        let autoscale = Some(Autoscale { min_slots: 1 });
        let admission = Some(Admission {
            max_outstanding: 24,
        });
        let policy = RoutingPolicy::LeastOutstanding;
        let oracle = run_fabric_admission(
            &env,
            &registry,
            &endpoints,
            &invocations,
            policy,
            cold,
            autoscale,
            None,
            admission,
        );
        let mut cfg = FederationCfg::new(policy);
        cfg.cold = cold;
        cfg.autoscale = autoscale;
        cfg.admission = admission;
        let fed = run_federation(
            &env,
            &registry,
            &endpoints,
            &single_site(&env, &endpoints),
            &invocations,
            &cfg,
        );
        assert_eq!(fed.fabric, oracle);
        assert!(fed.fabric.rejected > 0, "gate exercised");
    }

    #[test]
    fn batching_conserves_and_defers_dispatch() {
        let (env, partition, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 500, 300.0, 9);
        let sites = sites_from_partition(&env, &partition, &endpoints, 2);
        let mut lat = Vec::new();
        for batch in [1usize, 8, 32] {
            let mut cfg = FederationCfg::new(RoutingPolicy::RoundRobin);
            cfg.batch = batch;
            cfg.drain_every = SimDuration::from_millis(50);
            let fed = run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg);
            assert_eq!(
                fed.fabric.completed,
                invocations.len() as u64,
                "batch {batch}"
            );
            if batch == 1 {
                assert_eq!(fed.max_batch, 1);
            } else {
                assert!(fed.max_batch > 1, "batch {batch} never coalesced");
                assert!(fed.drains < invocations.len() as u64);
            }
            let (p50, _, _) = fed.fabric.latency_percentiles();
            lat.push(p50);
        }
        // Buffering trades latency for amortization: median latency is
        // monotone non-decreasing in batch size on this steady load.
        assert!(
            lat[0] <= lat[1] + 1e-9 && lat[1] <= lat[2] + 1e-9,
            "{lat:?}"
        );
    }

    #[test]
    fn warm_pool_hits_repeat_functions_and_evicts_lru() {
        let (env, _, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let fa = registry.register("a", 5e9, 10 << 10, 1 << 10);
        let fb = registry.register("b", 5e9, 10 << 10, 1 << 10);
        let cloud = env.fleet.in_tier(Tier::Cloud);
        let endpoints = endpoints_on(&env, &cloud[..1]);
        let sites = single_site(&env, &endpoints);
        // Sparse serial traffic alternating two functions.
        let invocations: Vec<Invocation> = (0..20)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(10.0 * i as f64),
                origin: sensors[0],
                function: if i % 2 == 0 { fa } else { fb },
            })
            .collect();
        let pool = |capacity| {
            let mut cfg = FederationCfg::new(RoutingPolicy::RoundRobin);
            cfg.warm_pool = Some(WarmPool {
                capacity,
                cold_time: SimDuration::from_secs(1),
            });
            run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg)
        };
        // Capacity 2 holds both functions: two boots, the rest warm.
        let big = pool(2);
        assert_eq!(big.sites[0].cold_boots, 2);
        assert_eq!(big.sites[0].warm_hits, 18);
        // Capacity 1 thrashes: alternating functions evict each other.
        let small = pool(1);
        assert_eq!(small.sites[0].warm_hits, 0);
        assert_eq!(small.sites[0].cold_boots, 20);
        // Capacity 0 runs everything cold too.
        let none = pool(0);
        assert_eq!(none.sites[0].cold_boots, 20);
        // Warmth shows up in latency.
        let (big_p50, _, _) = big.fabric.latency_percentiles();
        let (small_p50, _, _) = small.fabric.latency_percentiles();
        assert!(big_p50 < small_p50);
    }

    #[test]
    fn site_crash_triggers_peer_takeover_and_conserves() {
        let (env, partition, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 400, 200.0, 13);
        let sites = sites_from_partition(&env, &partition, &endpoints, 4);
        assert!(sites.len() >= 2, "need peers for takeover");
        let mid = invocations[invocations.len() / 2].arrival;
        let mut cfg = FederationCfg::new(RoutingPolicy::LeastOutstanding);
        cfg.site_faults = Some(SiteFaults {
            events: vec![
                SiteFaultEvent {
                    at: mid,
                    site: 0,
                    crash: true,
                },
                SiteFaultEvent {
                    at: mid + SimDuration::from_secs(30),
                    site: 0,
                    crash: false,
                },
            ],
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: 0xBEEF,
        });
        let fed = run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg);
        let f = &fed.fabric;
        assert_eq!(
            f.completed + f.dropped + f.rejected,
            invocations.len() as u64,
            "conservation"
        );
        assert_eq!(fed.site_crashes, 1);
        assert_eq!(fed.site_detections, 1);
        assert_eq!(fed.site_recoveries, 1);
        assert_eq!(fed.takeovers, 1, "a peer adopted the dead site's work");
        let adopted: u64 = fed.sites.iter().map(|s| s.adopted).sum();
        assert!(adopted > 0, "takeover moved work");
        assert!(f.completed > 0);
    }

    #[test]
    fn health_plane_records_takeover_and_leaves_fabric_untouched() {
        let (env, partition, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 400, 200.0, 13);
        let sites = sites_from_partition(&env, &partition, &endpoints, 4);
        let mid = invocations[invocations.len() / 2].arrival;
        let mut cfg = FederationCfg::new(RoutingPolicy::LeastOutstanding);
        cfg.warm_pool = Some(WarmPool {
            capacity: 4,
            cold_time: SimDuration::from_millis(200),
        });
        cfg.site_faults = Some(SiteFaults {
            events: vec![
                SiteFaultEvent {
                    at: mid,
                    site: 0,
                    crash: true,
                },
                SiteFaultEvent {
                    at: mid + SimDuration::from_secs(30),
                    site: 0,
                    crash: false,
                },
            ],
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: 0xBEEF,
        });
        let plain = run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg);
        assert!(plain.health.is_none());
        let mut hcfg = cfg.clone();
        hcfg.health = Some(HealthSpec {
            sample_every_ns: 50_000_000, // 50 ms: plenty of frames
            ..HealthSpec::default()
        });
        let fed = run_federation(&env, &registry, &endpoints, &sites, &invocations, &hcfg);
        // Observing the run must not change it.
        assert_eq!(fed.fabric, plain.fabric);
        assert_eq!(fed.takeovers, plain.takeovers);
        let h = fed.health.as_ref().expect("health requested");
        assert_eq!(h.observed, fed.fabric.completed);
        assert!(h.anomalies.iter().any(|a| a.kind == "takeover"));
        assert_eq!(h.incident.as_ref().unwrap().at_ns, mid.0 + 500_000_000);
        assert!(!h.frames.is_empty(), "flight recorder sampled frames");
        assert!(
            h.frames
                .iter()
                .any(|f| f.gauges.iter().any(|(k, _)| k.ends_with(".warm_hit_rate"))),
            "frames carry per-site warm-pool gauges"
        );
        // Deterministic: the same run yields the same timeline.
        let again = run_federation(&env, &registry, &endpoints, &sites, &invocations, &hcfg);
        assert_eq!(again.health, fed.health);
    }

    #[test]
    fn site_crash_with_no_peer_backs_off_like_single_broker() {
        let (env, _, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 50, 100.0, 21);
        let sites = single_site(&env, &endpoints);
        let start = invocations[0].arrival;
        let mut cfg = FederationCfg::new(RoutingPolicy::RoundRobin);
        cfg.site_faults = Some(SiteFaults {
            events: vec![
                SiteFaultEvent {
                    at: start,
                    site: 0,
                    crash: true,
                },
                SiteFaultEvent {
                    at: start + SimDuration::from_secs(5),
                    site: 0,
                    crash: false,
                },
            ],
            heartbeat: SimDuration::from_millis(200),
            backoff: Backoff::default(),
            seed: 3,
        });
        let fed = run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg);
        let f = &fed.fabric;
        assert_eq!(
            f.completed + f.dropped + f.rejected,
            invocations.len() as u64
        );
        assert_eq!(fed.takeovers, 0, "no surviving peer to adopt");
        assert!(f.retries > 0, "displaced work backed off");
        assert!(f.completed > 0, "recovery drained the backlog");
    }

    #[test]
    fn forwarder_cache_hits_dominate_on_repeat_traffic() {
        let (env, partition, sensors) = world();
        let (registry, endpoints, invocations) = workload(&env, &sensors, 1000, 300.0, 5);
        let sites = sites_from_partition(&env, &partition, &endpoints, 4);
        let fed = run_federation(
            &env,
            &registry,
            &endpoints,
            &sites,
            &invocations,
            &FederationCfg::new(RoutingPolicy::RoundRobin),
        );
        assert!(
            fed.route_hits > fed.route_misses,
            "hits {} misses {}",
            fed.route_hits,
            fed.route_misses
        );
    }
}
