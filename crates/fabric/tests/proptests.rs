//! Property-based tests for the function fabric.

use continuum_fabric::{
    endpoints_on, run_fabric, run_fabric_faulty, run_federation, sites_from_partition, Backoff,
    EndpointFaults, FederationCfg, FunctionRegistry, Invocation, RoutingPolicy, SiteFaultEvent,
    SiteFaults,
};
use continuum_model::standard_fleet;
use continuum_net::{continuum, continuum_regions, ContinuumSpec, RegionPartition, Tier};
use continuum_placement::Env;
use continuum_sim::{FaultProcess, FaultScheduleSpec, Rng, SimDuration, SimTime};
use proptest::prelude::*;

/// PR builds run the small default; CI nightlies push the same
/// properties much harder via `CONTINUUM_FABRIC_CASES`.
fn fabric_cases() -> u32 {
    std::env::var("CONTINUUM_FABRIC_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

fn world() -> (Env, Vec<continuum_net::NodeId>) {
    let built = continuum(&ContinuumSpec::default());
    let sensors = built.sensors.clone();
    (
        Env::new(built.topology.clone(), standard_fleet(&built)),
        sensors,
    )
}

fn partitioned_world() -> (Env, RegionPartition, Vec<continuum_net::NodeId>) {
    let spec = ContinuumSpec::default();
    let built = continuum(&spec);
    let sensors = built.sensors.clone();
    let env = Env::new(built.topology.clone(), standard_fleet(&built));
    let partition = RegionPartition::new(&env.topology, continuum_regions(&spec), 0);
    (env, partition, sensors)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fabric_cases(), ..ProptestConfig::default() })]

    /// Conservation and sanity: every invocation completes exactly once,
    /// latencies are positive, per-endpoint counts sum to the total, and
    /// Jain stays within its bounds — for every policy, any load.
    #[test]
    fn fabric_conservation(
        seed in any::<u64>(),
        n in 1usize..200,
        rate in 1.0f64..500.0,
        policy_idx in 0usize..3,
        work_exp in 8.0f64..10.5,
    ) {
        let (env, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 10f64.powf(work_exp), 10 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ][policy_idx];
        let rep = run_fabric(&env, &registry, &endpoints, &invocations, policy);
        prop_assert_eq!(rep.completed, n as u64);
        prop_assert_eq!(rep.latencies_s.len(), n);
        prop_assert_eq!(rep.per_endpoint.iter().sum::<u64>(), n as u64);
        for &l in &rep.latencies_s {
            prop_assert!(l > 0.0, "non-positive latency {l}");
        }
        let lo = 1.0 / endpoints.len() as f64;
        prop_assert!(rep.jain >= lo - 1e-9 && rep.jain <= 1.0 + 1e-9, "jain {}", rep.jain);
        prop_assert!(rep.end_time >= invocations.last().expect("n >= 1").arrival);
    }

    /// Latency lower bound: no invocation beats the bare transfer+exec
    /// time of the fastest endpoint.
    #[test]
    fn latency_lower_bounded(seed in any::<u64>(), n in 1usize..60) {
        let (env, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 5e9, 200 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        // Fastest possible execution anywhere.
        let min_exec = endpoints
            .iter()
            .map(|e| {
                env.fleet
                    .device(e.device)
                    .spec
                    .compute_time_parallel(5e9, 1)
                    .as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let mut rng = Rng::new(seed);
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(rng.range_f64(0.0, 10.0)),
                origin: sensors[i % sensors.len()],
                function: f,
            })
            .collect();
        let rep = run_fabric(&env, &registry, &endpoints, &invocations, RoutingPolicy::Locality);
        for &l in &rep.latencies_s {
            prop_assert!(l >= min_exec, "latency {l} below bare exec {min_exec}");
        }
    }

    /// Fault chaos: under any generated endpoint crash/recover schedule,
    /// the broker terminates and conserves invocations — every one either
    /// completes or is explicitly dropped, never both, never lost.
    #[test]
    fn fabric_fault_conservation(
        seed in any::<u64>(),
        n in 1usize..120,
        rate in 5.0f64..200.0,
        policy_idx in 0usize..3,
        mttf_s in 5.0f64..60.0,
        mttr_s in 0.5f64..20.0,
    ) {
        let (env, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 1e10, 10 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        let spec = FaultScheduleSpec {
            horizon: SimDuration::from_secs_f64(t + 30.0),
            endpoints: FaultProcess {
                population: endpoints.len() as u32,
                mttf_s,
                mttr_s,
            },
            ..FaultScheduleSpec::default()
        };
        let faults = EndpointFaults {
            schedule: continuum_sim::FaultSchedule::generate(&spec, seed ^ 0xFA17),
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: seed ^ 0xBAC0,
        };
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ][policy_idx];
        let rep = run_fabric_faulty(
            &env,
            &registry,
            &endpoints,
            &invocations,
            policy,
            None,
            None,
            Some(&faults),
        );
        prop_assert_eq!(rep.completed + rep.dropped, n as u64, "invocation lost or duplicated");
        prop_assert_eq!(rep.latencies_s.len() as u64, rep.completed);
        prop_assert!(rep.retries >= rep.reroutes);
        prop_assert!(rep.lost_work_s >= 0.0);
        // The generated schedule always recovers every crash, so with
        // default (generous) retry budgets nothing should be dropped
        // unless retries genuinely ran out during a long outage chain.
        for &l in &rep.latencies_s {
            prop_assert!(l > 0.0);
        }
    }

    /// `Backoff::delay` honours its contract for any configuration: the
    /// nominal delay doubles from `base` until it pins at `cap` (never
    /// zero), jitter perturbs it by at most the configured fraction, and
    /// the whole sequence is a pure function of the `Rng` seed.
    #[test]
    fn backoff_delay_bounded_and_deterministic(
        base_ms in 1u64..500,
        cap_ms in 1u64..20_000,
        jitter_amp in 0.01f64..0.5,
        jitter_on in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let jitter = if jitter_on { jitter_amp } else { 0.0 };
        let cfg = Backoff {
            base: SimDuration::from_millis(base_ms),
            cap: SimDuration::from_millis(cap_ms),
            jitter,
            max_retries: 16,
        };
        let mut rng_a = Rng::new(seed);
        let mut rng_b = Rng::new(seed);
        let mut prev_nominal = 0u64;
        for attempt in 0..24u32 {
            let nominal_ns = cfg
                .base
                .as_nanos()
                .saturating_mul(1u64 << attempt.min(40))
                .min(cfg.cap.as_nanos())
                .max(1);
            let d = cfg.delay(attempt, &mut rng_a);
            // Same seed, same position => same delay.
            prop_assert_eq!(d, cfg.delay(attempt, &mut rng_b));
            if jitter == 0.0 {
                prop_assert_eq!(d.as_nanos(), nominal_ns, "attempt {}", attempt);
            }
            // Jitter never exceeds half the configured amplitude each way.
            let got = d.as_secs_f64();
            let nominal_s = nominal_ns as f64 * 1e-9;
            let lo = nominal_s * (1.0 - jitter / 2.0) - 1e-9;
            let hi = nominal_s * (1.0 + jitter / 2.0) + 1e-9;
            prop_assert!(
                got >= lo && got <= hi,
                "attempt {}: {} outside [{}, {}]", attempt, got, lo, hi
            );
            // Base growth is monotone until it parks at the cap.
            prop_assert!(nominal_ns >= prev_nominal);
            prev_nominal = nominal_ns;
        }
    }

    /// The federation's equivalence oracle, under chaos: a 1-site
    /// federation at batch 1 reproduces `run_fabric_faulty` bit-for-bit —
    /// same latencies in the same order, same retry/reroute/drop
    /// counters, same slot-seconds — for any load, policy, and
    /// endpoint-level fault schedule.
    #[test]
    fn federation_single_site_identical_under_faults(
        seed in any::<u64>(),
        n in 1usize..120,
        rate in 5.0f64..200.0,
        policy_idx in 0usize..3,
        mttf_s in 5.0f64..60.0,
        mttr_s in 0.5f64..20.0,
    ) {
        let (env, partition, sensors) = partitioned_world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 1e10, 10 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        let spec = FaultScheduleSpec {
            horizon: SimDuration::from_secs_f64(t + 30.0),
            endpoints: FaultProcess {
                population: endpoints.len() as u32,
                mttf_s,
                mttr_s,
            },
            ..FaultScheduleSpec::default()
        };
        let faults = EndpointFaults {
            schedule: continuum_sim::FaultSchedule::generate(&spec, seed ^ 0xFA17),
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: seed ^ 0xBAC0,
        };
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ][policy_idx];
        let oracle = run_fabric_faulty(
            &env,
            &registry,
            &endpoints,
            &invocations,
            policy,
            None,
            None,
            Some(&faults),
        );
        let sites = sites_from_partition(&env, &partition, &endpoints, 1);
        let mut cfg = FederationCfg::new(policy);
        cfg.faults = Some(faults);
        let fed = run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg);
        prop_assert_eq!(&fed.fabric, &oracle);
    }

    /// Federated-vs-centralized conservation under *site* failures: for
    /// 1, 2, and 4 sites over the same world, load, and site outage,
    /// every invocation completes, drops, or is rejected — exactly once,
    /// never lost — and takeover accounting stays consistent.
    #[test]
    fn federation_site_failure_conservation(
        seed in any::<u64>(),
        n in 1usize..150,
        rate in 5.0f64..300.0,
        policy_idx in 0usize..3,
        batch in 1usize..33,
        crash_frac in 0.1f64..0.9,
        outage_s in 1.0f64..30.0,
    ) {
        let (env, partition, sensors) = partitioned_world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 5e9, 10 << 10, 1 << 10);
        let mut devices = env.fleet.in_tier(Tier::Fog);
        devices.extend(env.fleet.in_tier(Tier::Cloud));
        let endpoints = endpoints_on(&env, &devices);
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ][policy_idx];
        let crash_at = SimTime::from_secs_f64(t * crash_frac);
        for max_sites in [1usize, 2, 4] {
            let sites = sites_from_partition(&env, &partition, &endpoints, max_sites);
            let victim = (seed % sites.len() as u64) as u32;
            let mut cfg = FederationCfg::new(policy);
            cfg.batch = batch;
            cfg.site_faults = Some(SiteFaults {
                events: vec![
                    SiteFaultEvent { at: crash_at, site: victim, crash: true },
                    SiteFaultEvent {
                        at: crash_at + SimDuration::from_secs_f64(outage_s),
                        site: victim,
                        crash: false,
                    },
                ],
                heartbeat: SimDuration::from_millis(500),
                backoff: Backoff::default(),
                seed: seed ^ 0x51FE,
            });
            let fed = run_federation(&env, &registry, &endpoints, &sites, &invocations, &cfg);
            let rep = &fed.fabric;
            prop_assert_eq!(
                rep.completed + rep.dropped + rep.rejected,
                n as u64,
                "{} sites: invocation lost or duplicated", sites.len()
            );
            prop_assert_eq!(rep.latencies_s.len() as u64, rep.completed);
            prop_assert!(rep.lost_work_s >= 0.0);
            prop_assert!(fed.site_crashes <= 1 && fed.site_recoveries <= 1);
            prop_assert!(fed.takeovers <= fed.site_detections);
            if sites.len() == 1 {
                prop_assert_eq!(fed.takeovers, 0, "no peer can adopt a lone site");
            }
            for &l in &rep.latencies_s {
                prop_assert!(l > 0.0);
            }
        }
    }
}
