//! Property-based tests for the function fabric.

use continuum_fabric::{
    endpoints_on, run_fabric, run_fabric_faulty, Backoff, EndpointFaults, FunctionRegistry,
    Invocation, RoutingPolicy,
};
use continuum_model::standard_fleet;
use continuum_net::{continuum, ContinuumSpec, Tier};
use continuum_placement::Env;
use continuum_sim::{FaultProcess, FaultScheduleSpec, Rng, SimDuration, SimTime};
use proptest::prelude::*;

fn world() -> (Env, Vec<continuum_net::NodeId>) {
    let built = continuum(&ContinuumSpec::default());
    let sensors = built.sensors.clone();
    (
        Env::new(built.topology.clone(), standard_fleet(&built)),
        sensors,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Conservation and sanity: every invocation completes exactly once,
    /// latencies are positive, per-endpoint counts sum to the total, and
    /// Jain stays within its bounds — for every policy, any load.
    #[test]
    fn fabric_conservation(
        seed in any::<u64>(),
        n in 1usize..200,
        rate in 1.0f64..500.0,
        policy_idx in 0usize..3,
        work_exp in 8.0f64..10.5,
    ) {
        let (env, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 10f64.powf(work_exp), 10 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ][policy_idx];
        let rep = run_fabric(&env, &registry, &endpoints, &invocations, policy);
        prop_assert_eq!(rep.completed, n as u64);
        prop_assert_eq!(rep.latencies_s.len(), n);
        prop_assert_eq!(rep.per_endpoint.iter().sum::<u64>(), n as u64);
        for &l in &rep.latencies_s {
            prop_assert!(l > 0.0, "non-positive latency {l}");
        }
        let lo = 1.0 / endpoints.len() as f64;
        prop_assert!(rep.jain >= lo - 1e-9 && rep.jain <= 1.0 + 1e-9, "jain {}", rep.jain);
        prop_assert!(rep.end_time >= invocations.last().expect("n >= 1").arrival);
    }

    /// Latency lower bound: no invocation beats the bare transfer+exec
    /// time of the fastest endpoint.
    #[test]
    fn latency_lower_bounded(seed in any::<u64>(), n in 1usize..60) {
        let (env, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 5e9, 200 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        // Fastest possible execution anywhere.
        let min_exec = endpoints
            .iter()
            .map(|e| {
                env.fleet
                    .device(e.device)
                    .spec
                    .compute_time_parallel(5e9, 1)
                    .as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let mut rng = Rng::new(seed);
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| Invocation {
                arrival: SimTime::from_secs_f64(rng.range_f64(0.0, 10.0)),
                origin: sensors[i % sensors.len()],
                function: f,
            })
            .collect();
        let rep = run_fabric(&env, &registry, &endpoints, &invocations, RoutingPolicy::Locality);
        for &l in &rep.latencies_s {
            prop_assert!(l >= min_exec, "latency {l} below bare exec {min_exec}");
        }
    }

    /// Fault chaos: under any generated endpoint crash/recover schedule,
    /// the broker terminates and conserves invocations — every one either
    /// completes or is explicitly dropped, never both, never lost.
    #[test]
    fn fabric_fault_conservation(
        seed in any::<u64>(),
        n in 1usize..120,
        rate in 5.0f64..200.0,
        policy_idx in 0usize..3,
        mttf_s in 5.0f64..60.0,
        mttr_s in 0.5f64..20.0,
    ) {
        let (env, sensors) = world();
        let mut registry = FunctionRegistry::new();
        let f = registry.register("f", 1e10, 10 << 10, 1 << 10);
        let endpoints = endpoints_on(&env, &env.fleet.in_tier(Tier::Cloud));
        let mut rng = Rng::new(seed);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..n)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: sensors[i % sensors.len()],
                    function: f,
                }
            })
            .collect();
        let spec = FaultScheduleSpec {
            horizon: SimDuration::from_secs_f64(t + 30.0),
            endpoints: FaultProcess {
                population: endpoints.len() as u32,
                mttf_s,
                mttr_s,
            },
            ..FaultScheduleSpec::default()
        };
        let faults = EndpointFaults {
            schedule: continuum_sim::FaultSchedule::generate(&spec, seed ^ 0xFA17),
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: seed ^ 0xBAC0,
        };
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ][policy_idx];
        let rep = run_fabric_faulty(
            &env,
            &registry,
            &endpoints,
            &invocations,
            policy,
            None,
            None,
            Some(&faults),
        );
        prop_assert_eq!(rep.completed + rep.dropped, n as u64, "invocation lost or duplicated");
        prop_assert_eq!(rep.latencies_s.len() as u64, rep.completed);
        prop_assert!(rep.retries >= rep.reroutes);
        prop_assert!(rep.lost_work_s >= 0.0);
        // The generated schedule always recovers every crash, so with
        // default (generous) retry budgets nothing should be dropped
        // unless retries genuinely ran out during a long outage chain.
        for &l in &rep.latencies_s {
            prop_assert!(l > 0.0);
        }
    }
}
