//! Sim-time telemetry plane for the continuum workspace.
//!
//! The keynote's placement question ("where should I compute?") is only
//! answerable if the continuum can *see itself*: funcX steers federated
//! placement off per-endpoint telemetry, and repeatable edge-to-cloud
//! experiments need every run to emit a comparable machine-readable
//! record. This crate is that layer for the simulators: a metrics
//! registry ([`MetricsRegistry`] / [`MetricsSnapshot`]) plus a span and
//! event tracer ([`Tracer`]) with a Chrome/Perfetto `trace_events`
//! exporter, all keyed to simulated time.
//!
//! # Zero cost when off
//!
//! The executors' hot loops never talk to this crate. Instrumented
//! components (route cache, event queue, flow engine, broker, stream
//! executor) keep plain integer counters on their own structs — the same
//! instructions they already execute — and a run *harvests* them into a
//! [`MetricsSnapshot`] once, at run end, only if a [`Telemetry`] sink is
//! ambient. Span synthesis for the Perfetto export likewise happens
//! post-run from the execution trace the simulator already produces.
//! With no ambient sink, the total added cost of a run is one
//! thread-local read.
//!
//! # Ambient wiring
//!
//! Simulator entry points are deep in the call graph (experiment cells →
//! core facade → executor) and threading a sink parameter through every
//! signature would churn the entire workspace. Instead the sink is
//! *ambient*: [`with_ambient`] installs an `Rc<Telemetry>` into a
//! thread-local stack for the duration of a closure, and instrumented
//! entry points pick it up with [`ambient`] **once per run** — never per
//! event. Parallel experiment cells each install their own sink on their
//! own worker thread; the buffers are plain data afterwards, so per-cell
//! results merge deterministically.

pub mod health;
pub mod metrics;
pub mod trace;

pub use health::{
    Anomaly, BurnWindow, FlightRecorder, Frame, HealthPlane, HealthReport, HealthSpec, Incident,
};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use trace::{Phase, TraceEvent, Tracer};

use std::cell::RefCell;
use std::rc::Rc;

/// One telemetry sink: a metrics registry plus (optionally active) a
/// tracer, with the process id its trace events should carry.
#[derive(Debug, Default)]
pub struct Telemetry {
    pid: u32,
    trace: bool,
    /// Metrics registry; always active while the sink is ambient.
    pub metrics: MetricsRegistry,
    /// Trace buffer; only written when [`Telemetry::trace_enabled`].
    pub tracer: Tracer,
}

impl Telemetry {
    /// A sink on process track 1. `trace` turns on span/event capture;
    /// metrics are always collected for an installed sink.
    pub fn new(trace: bool) -> Self {
        Telemetry::with_pid(trace, 1)
    }

    /// A sink with an explicit Perfetto process id (one per experiment
    /// cell, so merged traces keep each cell on its own track group).
    pub fn with_pid(trace: bool, pid: u32) -> Self {
        Telemetry {
            pid,
            trace,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(),
        }
    }

    /// Process id stamped on this sink's trace events.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// True when span/event tracing is active (metrics always are).
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<Rc<Telemetry>>> = const { RefCell::new(Vec::new()) };
}

/// Install `tele` as this thread's ambient sink for the duration of `f`.
///
/// Scopes nest (the innermost wins) and unwind safely: the sink is
/// popped by a drop guard even if `f` panics.
pub fn with_ambient<R>(tele: &Rc<Telemetry>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            AMBIENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|stack| stack.borrow_mut().push(Rc::clone(tele)));
    let _guard = Guard;
    f()
}

/// The innermost ambient sink, if one is installed on this thread.
///
/// Instrumented entry points call this once per run and hold the `Rc`
/// for the run's duration; hot loops see a resolved option, not a
/// thread-local lookup.
pub fn ambient() -> Option<Rc<Telemetry>> {
    AMBIENT.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_is_scoped_and_nested() {
        assert!(ambient().is_none());
        let outer = Rc::new(Telemetry::new(false));
        let inner = Rc::new(Telemetry::with_pid(true, 2));
        with_ambient(&outer, || {
            assert_eq!(ambient().unwrap().pid(), 1);
            with_ambient(&inner, || {
                let t = ambient().unwrap();
                assert_eq!(t.pid(), 2);
                assert!(t.trace_enabled());
            });
            assert_eq!(ambient().unwrap().pid(), 1);
        });
        assert!(ambient().is_none());
    }

    #[test]
    fn ambient_pops_on_panic() {
        let tele = Rc::new(Telemetry::new(false));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_ambient(&tele, || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(ambient().is_none(), "guard must pop on unwind");
    }

    #[test]
    fn sink_collects_metrics_and_trace() {
        let tele = Rc::new(Telemetry::new(true));
        with_ambient(&tele, || {
            let t = ambient().unwrap();
            t.metrics.inc("runs", 1);
            if t.trace_enabled() {
                t.tracer.instant("tick", "test", 42, t.pid(), 0);
            }
        });
        assert_eq!(tele.metrics.snapshot().counter("runs"), 1);
        assert_eq!(tele.tracer.len(), 1);
    }
}
