//! The metrics half of the telemetry plane: a snapshot value type plus a
//! shared-reference registry wrapper.
//!
//! [`MetricsSnapshot`] is plain data — `BTreeMap`-backed counters,
//! gauges, sim-time histograms, and per-target labeled counters — so
//! every export (JSON row, `SimOutcome` attachment, merged experiment
//! summary) is deterministic: iteration order is key order, never
//! insertion or hash order. [`MetricsRegistry`] wraps a snapshot in a
//! `RefCell` so instrumented code can record through `&self`; the
//! simulators are single-threaded per run, so no locking is needed —
//! this is the "lock-cheap" part of the design.
//!
//! Hot paths do **not** call into the registry per event. Components keep
//! plain integer counters on their own structs (the same cost as the
//! code they already run) and the executors *harvest* them into a
//! snapshot once per run. The registry only sees O(runs) traffic, which
//! is why telemetry-off runs are indistinguishable from the seed.

use serde::{Serialize, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Number of log2 buckets: index `i > 0` counts observations in
/// `[2^(i-1), 2^i)` nanoseconds; index 0 counts exact zeros. 64-bit
/// durations need 64 + 1 slots.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of simulated durations (nanoseconds).
///
/// Power-of-two buckets cover the full `u64` range with a fixed-size
/// array and no configuration: at sim resolution (1 ns) that spans
/// sub-microsecond queue hops to multi-hour makespans with ~2x relative
/// error, plenty for "where did sim time go" questions.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed durations, saturating at `u64::MAX`.
    pub sum_ns: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest observation (0 when empty).
    pub max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one duration.
    pub fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// Record one duration given in fractional seconds.
    ///
    /// Rounds **up** to the next whole nanosecond — the same convention as
    /// the sim-time `SimDuration::from_secs_f64` constructor — so that
    /// every producer of second-valued latencies lands in the same bucket
    /// a sim-time producer would. This is the single seconds-to-ns
    /// conversion point for the workspace; report-side quantiles and
    /// telemetry exports share it and therefore cannot drift.
    pub fn observe_secs(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        self.observe((s * 1e9).ceil() as u64);
    }

    /// Bucket index for a duration: 0 for zero, else `64 - clz(ns)`.
    fn bucket_of(ns: u64) -> usize {
        (u64::BITS - ns.leading_zeros()) as usize
    }

    /// Upper bound (exclusive) of bucket `i`, saturating at `u64::MAX`.
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64.checked_shl(i as u32).unwrap_or(u64::MAX)
        }
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(upper_bound_ns_exclusive, count)` pairs,
    /// ascending — the sparse form used for export.
    pub fn sparse_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }

    /// Estimated `q`-quantile in nanoseconds (`q` in `[0, 1]`), by
    /// cumulative walk over the log2 buckets with linear interpolation
    /// inside the containing bucket. Clamped to the observed
    /// `[min_ns, max_ns]` range, so the estimate never extrapolates past
    /// real observations; returns 0 when empty. Error is bounded by the
    /// ~2x bucket width, which is plenty for p50/p99/p999 SLO tracking.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = if i <= 1 { 0u64 } else { 1u64 << (i - 1) };
                let hi = Self::bucket_bound(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).clamp(self.min_ns, self.max_ns);
            }
            cum += c;
        }
        self.max_ns
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        let buckets = self
            .sparse_buckets()
            .into_iter()
            .map(|(bound, count)| (bound.to_string(), Value::U64(count)))
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum_ns".to_string(), Value::U64(self.sum_ns)),
            (
                "min_ns".to_string(),
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::U64(self.min_ns)
                },
            ),
            ("max_ns".to_string(), Value::U64(self.max_ns)),
            ("mean_ns".to_string(), Value::F64(self.mean_ns())),
            ("buckets_lt_ns".to_string(), Value::Object(buckets)),
        ])
    }
}

/// A point-in-time metrics capture: the value the rest of the workspace
/// passes around, embeds in `SimOutcome`, and attaches to experiment
/// rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    labeled: BTreeMap<String, BTreeMap<u32, u64>>,
}

impl MetricsSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Add `by` to a monotonically increasing counter.
    pub fn inc(&mut self, name: &str, by: u64) {
        if by > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Add `by` to a counter, materialising the key even when `by` is 0.
    ///
    /// [`inc`](Self::inc) keeps snapshots sparse by skipping zero
    /// increments; headline counters (route-cache hits, compactions,
    /// failovers) use this instead so a zero is visible in the export as
    /// an explicit `0` rather than an absent key.
    pub fn record(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set a last-write-wins gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record a simulated duration into a histogram.
    pub fn observe_ns(&mut self, name: &str, ns: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(ns);
    }

    /// Add `by` to a per-target labeled counter (label = dense device,
    /// link, or endpoint index).
    pub fn inc_labeled(&mut self, name: &str, label: u32, by: u64) {
        if by > 0 {
            *self
                .labeled
                .entry(name.to_string())
                .or_default()
                .entry(label)
                .or_insert(0) += by;
        }
    }

    /// Counter value, 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Labeled counter map, if any label was incremented.
    pub fn labeled(&self, name: &str) -> Option<&BTreeMap<u32, u64>> {
        self.labeled.get(name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.labeled.is_empty()
    }

    /// Fold a standalone histogram (e.g. a streaming-sink latency
    /// histogram harvested outside the registry) into the named entry.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if h.count > 0 {
            self.histograms
                .entry(name.to_string())
                .or_default()
                .merge(h);
        }
    }

    /// Fold another snapshot into this one: counters, labeled counters,
    /// and histograms add; gauges are last-write-wins (the merged-in
    /// snapshot overwrites). Merging in a deterministic order therefore
    /// yields a deterministic result.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, m) in &other.labeled {
            let mine = self.labeled.entry(k.clone()).or_default();
            for (label, v) in m {
                *mine.entry(*label).or_insert(0) += v;
            }
        }
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        fn object<V: Serialize>(map: &BTreeMap<String, V>) -> Value {
            Value::Object(map.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
        }
        let labeled = Value::Object(
            self.labeled
                .iter()
                .map(|(k, m)| {
                    let inner = m
                        .iter()
                        .map(|(label, v)| (label.to_string(), Value::U64(*v)))
                        .collect();
                    (k.clone(), Value::Object(inner))
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".to_string(), object(&self.counters)),
            ("gauges".to_string(), object(&self.gauges)),
            ("histograms".to_string(), object(&self.histograms)),
            ("labeled".to_string(), labeled),
        ])
    }
}

/// Shared-reference facade over a [`MetricsSnapshot`], so instrumented
/// code records through `&self`. Single-threaded interior mutability
/// (`RefCell`) — each simulated run lives on one thread, and parallel
/// experiment cells each carry their own registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RefCell<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to a counter.
    pub fn inc(&self, name: &str, by: u64) {
        self.inner.borrow_mut().inc(name, by);
    }

    /// Add `by` to a counter, materialising the key even at zero.
    pub fn record(&self, name: &str, by: u64) {
        self.inner.borrow_mut().record(name, by);
    }

    /// Set a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.borrow_mut().set_gauge(name, value);
    }

    /// Record a simulated duration.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.inner.borrow_mut().observe_ns(name, ns);
    }

    /// Add `by` to a labeled counter.
    pub fn inc_labeled(&self, name: &str, label: u32, by: u64) {
        self.inner.borrow_mut().inc_labeled(name, label, by);
    }

    /// Fold a finished run's snapshot into the registry.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        self.inner.borrow_mut().merge(snap);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_labels() {
        let reg = MetricsRegistry::new();
        reg.inc("route_cache.hits", 3);
        reg.inc("route_cache.hits", 2);
        reg.inc("route_cache.misses", 0); // no-op
        reg.set_gauge("hit_rate", 0.6);
        reg.inc_labeled("device.tasks", 4, 7);
        reg.inc_labeled("device.tasks", 1, 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("route_cache.hits"), 5);
        assert_eq!(snap.counter("route_cache.misses"), 0);
        assert_eq!(snap.gauge("hit_rate"), Some(0.6));
        let labels = snap.labeled("device.tasks").unwrap();
        assert_eq!(labels.get(&4), Some(&7));
        assert_eq!(labels.get(&1), Some(&1));
        assert!(!snap.is_empty());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for ns in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.observe(ns);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, u64::MAX);
        let sparse = h.sparse_buckets();
        // 0 -> bound 1; 1 -> bound 2; 2,3 -> bound 4; 1024 -> bound 2048;
        // u64::MAX -> top bucket (saturated bound).
        assert_eq!(
            sparse,
            vec![(1, 1), (2, 1), (4, 2), (2048, 1), (u64::MAX, 1)]
        );
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn observe_secs_rounds_up_to_whole_nanoseconds() {
        let mut by_secs = Histogram::default();
        let mut by_ns = Histogram::default();
        for s in [0.0, 1e-9, 1.5e-9, 0.25, 3.0] {
            by_secs.observe_secs(s);
            by_ns.observe((s * 1e9).ceil() as u64);
        }
        assert_eq!(by_secs, by_ns);
        assert_eq!(by_secs.count, 5);
        // 1.5 ns rounds up, never down.
        let mut h = Histogram::default();
        h.observe_secs(1.5e-9);
        assert_eq!(h.min_ns, 2);
    }

    #[test]
    fn quantiles_walk_buckets_monotonically() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        // 1000 observations spread over four decades.
        for i in 0..1000u64 {
            h.observe(1_000 + i * 1_000_000);
        }
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!(p50 <= p99 && p99 <= p999, "p50 {p50} p99 {p99} p999 {p999}");
        assert!(p50 >= h.min_ns && p999 <= h.max_ns);
        // log2 buckets: estimates are within ~2x of the true quantile.
        let true_p50 = 1_000 + 500 * 1_000_000;
        assert!(
            p50 as f64 / true_p50 as f64 > 0.5 && (p50 as f64 / true_p50 as f64) < 2.0,
            "p50 {p50} vs true {true_p50}"
        );
    }

    #[test]
    fn quantile_single_value_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.observe(4096);
        }
        // Min/max clamping pins a degenerate distribution exactly.
        assert_eq!(h.quantile_ns(0.0), 4096);
        assert_eq!(h.quantile_ns(0.5), 4096);
        assert_eq!(h.quantile_ns(1.0), 4096);
    }

    #[test]
    fn merge_histogram_folds_standalone() {
        let mut snap = MetricsSnapshot::new();
        let mut h = Histogram::default();
        h.observe(100);
        h.observe(200);
        snap.merge_histogram("slo.request_latency", &h);
        snap.merge_histogram("slo.request_latency", &h);
        assert_eq!(snap.histogram("slo.request_latency").unwrap().count, 4);
        // Empty histograms do not materialise a key.
        snap.merge_histogram("slo.empty", &Histogram::default());
        assert!(snap.histogram("slo.empty").is_none());
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsSnapshot::new();
        a.inc("x", 2);
        a.observe_ns("lat", 10);
        a.set_gauge("g", 1.0);
        let mut b = MetricsSnapshot::new();
        b.inc("x", 3);
        b.inc("y", 1);
        b.observe_ns("lat", 30);
        b.set_gauge("g", 2.0);
        b.inc_labeled("dev", 0, 4);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("lat").unwrap().count, 2);
        assert_eq!(a.gauge("g"), Some(2.0), "gauges are last-write-wins");
        assert_eq!(a.labeled("dev").unwrap().get(&0), Some(&4));
    }

    #[test]
    fn export_is_deterministic_and_key_sorted() {
        let mut snap = MetricsSnapshot::new();
        snap.inc("zebra", 1);
        snap.inc("alpha", 2);
        let v = snap.to_value();
        let text = serde_json::to_string(&v).unwrap();
        let again = serde_json::to_string(&snap.clone().to_value()).unwrap();
        assert_eq!(text, again);
        // BTreeMap ordering: "alpha" renders before "zebra".
        assert!(text.find("alpha").unwrap() < text.find("zebra").unwrap());
    }
}
