//! The tracing half of the telemetry plane: sim-time span/event capture
//! and Chrome/Perfetto `trace_events` JSON export.
//!
//! A [`Tracer`] buffers [`TraceEvent`]s — timestamps are raw simulated
//! nanoseconds (`SimTime.0`; this crate deliberately does not depend on
//! the sim crate, so the plane sits below every layer it observes). The
//! exporter emits the Chrome trace-event format that ui.perfetto.dev and
//! `chrome://tracing` load directly:
//!
//! - duration spans as matched `B`/`E` pairs (one logical track — a
//!   `(pid, tid)` pair — per concurrent activity, so pairs always nest);
//! - self-contained slices as `X` complete events with a `dur`;
//! - point occurrences (faults, failovers, stalls) as `i` instants;
//! - `C` counter samples and `b`/`e` async pairs where overlap is
//!   inherent;
//! - `M` metadata records naming processes and threads.
//!
//! `ts`/`dur` are microseconds per the format, emitted as `ns / 1000.0`
//! so nothing below 1 µs collapses. Events are sorted by timestamp at
//! export (metadata first), which is what makes the "monotone ts" golden
//! test meaningful.

use serde::Value;
use std::cell::RefCell;

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// `B` — duration span begin.
    Begin,
    /// `E` — duration span end.
    End,
    /// `X` — complete slice carrying its own duration.
    Complete {
        /// Slice length in simulated nanoseconds.
        dur_ns: u64,
    },
    /// `i` — instant.
    Instant,
    /// `C` — counter sample.
    Counter {
        /// Sampled value.
        value: f64,
    },
    /// `b` — async span begin (overlap allowed, correlated by `id`).
    AsyncBegin {
        /// Correlation id shared with the matching end.
        id: u64,
    },
    /// `e` — async span end.
    AsyncEnd {
        /// Correlation id shared with the matching begin.
        id: u64,
    },
    /// `s` — flow start (arrow tail, correlated by `id`).
    FlowStart {
        /// Correlation id shared by every event on the flow.
        id: u64,
    },
    /// `t` — flow step (intermediate arrow waypoint).
    FlowStep {
        /// Correlation id shared by every event on the flow.
        id: u64,
    },
    /// `f` — flow end (arrow head).
    FlowEnd {
        /// Correlation id shared by every event on the flow.
        id: u64,
    },
    /// `M` — metadata (process/thread naming); sorts before real events.
    Metadata,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete { .. } => "X",
            Phase::Instant => "i",
            Phase::Counter { .. } => "C",
            Phase::AsyncBegin { .. } => "b",
            Phase::AsyncEnd { .. } => "e",
            Phase::FlowStart { .. } => "s",
            Phase::FlowStep { .. } => "t",
            Phase::FlowEnd { .. } => "f",
            Phase::Metadata => "M",
        }
    }
}

/// One buffered trace event. Plain data (and `Send`), so per-cell
/// tracers from parallel experiment runs can be merged afterwards.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (span/slice label, or metadata key).
    pub name: String,
    /// Category tag, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Phase (and its phase-specific payload).
    pub ph: Phase,
    /// Simulated timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Process track (one per run/experiment cell).
    pub pid: u32,
    /// Thread track within the process.
    pub tid: u32,
    /// Extra `args` rendered onto the event.
    pub args: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str(self.cat.to_string())),
            ("ph".to_string(), Value::Str(self.ph.code().to_string())),
            ("ts".to_string(), Value::F64(self.ts_ns as f64 / 1000.0)),
            ("pid".to_string(), Value::U64(u64::from(self.pid))),
            ("tid".to_string(), Value::U64(u64::from(self.tid))),
        ];
        match self.ph {
            Phase::Complete { dur_ns } => {
                fields.push(("dur".to_string(), Value::F64(dur_ns as f64 / 1000.0)));
            }
            Phase::Instant => {
                // Thread-scoped instants render as small arrows.
                fields.push(("s".to_string(), Value::Str("t".to_string())));
            }
            Phase::AsyncBegin { id } | Phase::AsyncEnd { id } => {
                fields.push(("id".to_string(), Value::Str(format!("{id:#x}"))));
            }
            Phase::FlowStart { id } | Phase::FlowStep { id } => {
                fields.push(("id".to_string(), Value::Str(format!("{id:#x}"))));
            }
            Phase::FlowEnd { id } => {
                fields.push(("id".to_string(), Value::Str(format!("{id:#x}"))));
                // Bind the arrow head to the *enclosing* slice so the
                // arrow lands on the receiving span, not the next one.
                fields.push(("bp".to_string(), Value::Str("e".to_string())));
            }
            _ => {}
        }
        let mut args: Vec<(String, Value)> = self
            .args
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        if let Phase::Counter { value } = self.ph {
            args.push(("value".to_string(), Value::F64(value)));
        }
        if !args.is_empty() {
            fields.push(("args".to_string(), Value::Object(args)));
        }
        Value::Object(fields)
    }
}

/// Buffering trace sink with `&self` recording (single-threaded interior
/// mutability, like the metrics registry).
#[derive(Debug, Default)]
pub struct Tracer {
    events: RefCell<Vec<TraceEvent>>,
}

impl Tracer {
    /// Empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Push a fully specified event.
    pub fn push(&self, ev: TraceEvent) {
        self.events.borrow_mut().push(ev);
    }

    /// Begin a duration span on `(pid, tid)`.
    pub fn span_begin(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Begin,
            ts_ns,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// End the innermost open span on `(pid, tid)`.
    pub fn span_end(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::End,
            ts_ns,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// A complete slice with its own duration.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, Value)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Complete { dur_ns },
            ts_ns,
            pid,
            tid,
            args,
        });
    }

    /// A point-in-time instant.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Instant,
            ts_ns,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// A counter sample.
    pub fn counter(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        value: f64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Counter { value },
            ts_ns,
            pid,
            tid: 0,
            args: Vec::new(),
        });
    }

    /// Begin an async (overlap-tolerant) span correlated by `id`.
    pub fn async_begin(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        id: u64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::AsyncBegin { id },
            ts_ns,
            pid,
            tid: 0,
            args: Vec::new(),
        });
    }

    /// End an async span correlated by `id`.
    pub fn async_end(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        id: u64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::AsyncEnd { id },
            ts_ns,
            pid,
            tid: 0,
            args: Vec::new(),
        });
    }

    /// Start a flow arrow correlated by `id` at `(pid, tid)`.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_start(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
        id: u64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::FlowStart { id },
            ts_ns,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// An intermediate waypoint on flow `id` (multi-hop arrows).
    #[allow(clippy::too_many_arguments)]
    pub fn flow_step(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
        id: u64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::FlowStep { id },
            ts_ns,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Terminate flow `id` at `(pid, tid)` — the arrow head.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_end(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
        id: u64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::FlowEnd { id },
            ts_ns,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Name a process track.
    pub fn process_name(&self, pid: u32, name: impl Into<String>) {
        self.metadata("process_name", pid, 0, name.into());
    }

    /// Name a thread track.
    pub fn thread_name(&self, pid: u32, tid: u32, name: impl Into<String>) {
        self.metadata("thread_name", pid, tid, name.into());
    }

    fn metadata(&self, key: &'static str, pid: u32, tid: u32, name: String) {
        self.push(TraceEvent {
            name: key.to_string(),
            cat: "__metadata",
            ph: Phase::Metadata,
            ts_ns: 0,
            pid,
            tid,
            args: vec![("name", Value::Str(name))],
        });
    }

    /// Consume the tracer, returning the raw buffered events (for
    /// merging per-cell tracers into one file).
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_inner()
    }

    /// Append previously extracted events.
    pub fn absorb_events(&self, events: Vec<TraceEvent>) {
        self.events.borrow_mut().extend(events);
    }

    /// Render the Chrome/Perfetto `trace_events` JSON document.
    ///
    /// Metadata records sort first, then everything ascends by simulated
    /// timestamp; the sort is stable, so same-instant events keep their
    /// recording order (which keeps `B` before `E` for zero-length
    /// spans).
    pub fn export(&self) -> Value {
        let mut events = self.events.borrow().clone();
        events.sort_by_key(|e| (!matches!(e.ph, Phase::Metadata), e.ts_ns));
        Value::Object(vec![
            (
                "traceEvents".to_string(),
                Value::Array(events.iter().map(TraceEvent::to_value).collect()),
            ),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ])
    }

    /// [`Tracer::export`] rendered to compact JSON text.
    pub fn export_string(&self) -> String {
        serde_json::to_string(&self.export()).expect("trace export is tree-shaped")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_sorts_and_shapes_events() {
        let t = Tracer::new();
        t.instant("late", "test", 5_000, 1, 0);
        t.span_begin("req 0", "request", 1_000, 1, 7);
        t.span_end("req 0", "request", 9_000, 1, 7);
        t.complete(
            "task",
            "task",
            2_000,
            500,
            1,
            3,
            vec![("cores", Value::U64(2))],
        );
        t.process_name(1, "run");
        t.thread_name(1, 7, "request 0");

        let doc = t.export();
        let events = match doc.get("traceEvents") {
            Some(Value::Array(evs)) => evs,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        assert_eq!(events.len(), 6);
        // Metadata first, then ts-ascending.
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("M"));
        assert_eq!(events[1].get("ph").and_then(Value::as_str), Some("M"));
        let ts: Vec<f64> = events
            .iter()
            .map(|e| e.get("ts").and_then(Value::as_f64).unwrap())
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "ts not monotone: {ts:?}"
        );
        // µs scaling: 1_000 ns -> 1.0 µs.
        assert_eq!(events[2].get("ts").and_then(Value::as_f64), Some(1.0));
        // The X slice carries dur and args.
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(x.get("dur").and_then(Value::as_f64), Some(0.5));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("cores"))
                .and_then(Value::as_u64),
            Some(2)
        );
        // The document parses back as valid JSON.
        let text = t.export_string();
        serde_json::parse(&text).expect("export must be valid JSON");
    }

    #[test]
    fn flow_events_share_ids_and_bind_enclosing() {
        let t = Tracer::new();
        t.flow_start("hop", "xfer", 10, 1, 2, 0xCAFE);
        t.flow_step("hop", "xfer", 15, 2, 2, 0xCAFE);
        t.flow_end("hop", "xfer", 20, 3, 2, 0xCAFE);
        let doc = t.export();
        let events = match doc.get("traceEvents") {
            Some(Value::Array(evs)) => evs.clone(),
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        let phs: Vec<_> = events
            .iter()
            .map(|e| e.get("ph").and_then(Value::as_str).unwrap().to_string())
            .collect();
        assert_eq!(phs, ["s", "t", "f"]);
        for e in &events {
            assert_eq!(e.get("id").and_then(Value::as_str), Some("0xcafe"));
        }
        assert_eq!(events[2].get("bp").and_then(Value::as_str), Some("e"));
        assert!(events[0].get("bp").is_none());
    }

    #[test]
    fn async_and_counter_payloads() {
        let t = Tracer::new();
        t.async_begin("flow", "net", 10, 1, 0xBEEF);
        t.async_end("flow", "net", 20, 1, 0xBEEF);
        t.counter("tombstones", "queue", 15, 1, 3.0);
        let doc = t.export();
        let events = match doc.get("traceEvents") {
            Some(Value::Array(evs)) => evs.clone(),
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        assert_eq!(events[0].get("id").and_then(Value::as_str), Some("0xbeef"));
        assert_eq!(events[2].get("id").and_then(Value::as_str), Some("0xbeef"));
        let c = &events[1];
        assert_eq!(c.get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
    }
}
