//! The health half of the observatory: rolling-window SLO burn-rate
//! accounting and a bounded flight recorder.
//!
//! SRE-style burn rates answer "are we eating the error budget faster
//! than we can afford" without storing per-request state: a
//! [`BurnWindow`] is a fixed ring of sim-time slots, each holding one of
//! the existing log₂ [`Histogram`]s plus an over-objective count, so a
//! multi-window (5 m / 1 h) burn signal costs O(slots) memory however
//! long the run. The [`HealthPlane`] couples two windows to a
//! [`FlightRecorder`] — a ring buffer of sampled frames (burn rates,
//! windowed p99, caller-supplied gauges) that is snapshotted on the
//! first anomaly (burn over threshold, saturation, takeover) and dumped
//! as a JSON timeline at run end. Everything is keyed to *simulated*
//! time and fed deterministically from the executors' own completion
//! streams, so the plane inherits the telemetry plane's invariant: runs
//! that do not ask for health are bit-identical to runs that never
//! heard of it.
//!
//! Out-of-order tolerance: sharded executors settle completions in
//! shard order, not time order. Slot addressing is by absolute epoch
//! (`at / slot_ns`) with newest-epoch-wins collision handling, so the
//! final window state is a pure function of the *set* of observations —
//! never of their arrival order — which keeps sharded runs bit-identical
//! across shard counts.

use crate::metrics::{Histogram, MetricsRegistry};
use serde::{Serialize, Value};
use std::collections::VecDeque;

/// Ring slots per burn window. 30 slots over a 5-minute window is a
/// 10-second bucketing — coarse enough to stay O(1), fine enough that a
/// burst shows up within one slot.
const SLOTS: usize = 30;

/// Bound on recorded anomalies; later ones only bump a counter.
const MAX_ANOMALIES: usize = 64;

/// Static configuration for a run's health plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSpec {
    /// Latency objective in simulated nanoseconds; a completion slower
    /// than this burns error budget.
    pub objective_ns: u64,
    /// Error budget as a fraction of requests allowed over objective
    /// (e.g. 0.01 = 1%). Burn rate 1.0 means "spending exactly the
    /// budget"; 14.4 is the classic fast-burn page threshold.
    pub budget: f64,
    /// Short burn window in simulated nanoseconds (default 5 minutes).
    pub short_window_ns: u64,
    /// Long burn window in simulated nanoseconds (default 1 hour).
    pub long_window_ns: u64,
    /// Short-window burn rate that trips a `slo-burn` anomaly.
    pub burn_threshold: f64,
    /// Flight-recorder sampling cadence in simulated nanoseconds.
    pub sample_every_ns: u64,
    /// Flight-recorder ring capacity in frames.
    pub recorder_capacity: usize,
}

impl Default for HealthSpec {
    fn default() -> Self {
        HealthSpec {
            objective_ns: 400_000_000, // 400 ms
            budget: 0.01,
            short_window_ns: 5 * 60 * 1_000_000_000,
            long_window_ns: 60 * 60 * 1_000_000_000,
            burn_threshold: 14.4,
            sample_every_ns: 10_000_000_000, // 10 s
            recorder_capacity: 256,
        }
    }
}

impl HealthSpec {
    /// The default spec with a different latency objective.
    pub fn for_objective_ns(objective_ns: u64) -> Self {
        HealthSpec {
            objective_ns,
            ..HealthSpec::default()
        }
    }
}

/// One ring slot: the observations of a single absolute epoch.
#[derive(Debug, Clone)]
struct Slot {
    /// Absolute epoch (`at / slot_ns`) this slot currently holds, or
    /// `None` when never written.
    epoch: Option<u64>,
    hist: Histogram,
    bad: u64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            epoch: None,
            hist: Histogram::default(),
            bad: 0,
        }
    }
}

/// A rolling window of [`SLOTS`] sim-time epochs over log₂ histograms.
///
/// `observe` routes by absolute epoch with newest-epoch-wins collision
/// handling (see module docs), so window state is independent of
/// observation order.
#[derive(Debug, Clone)]
pub struct BurnWindow {
    slot_ns: u64,
    slots: Vec<Slot>,
}

/// Aggregates of the in-window slots at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Completions inside the window.
    pub total: u64,
    /// Completions over objective inside the window.
    pub bad: u64,
    /// Windowed p99 latency in nanoseconds (0 when the window is empty).
    pub p99_ns: u64,
}

impl BurnWindow {
    /// A window spanning `window_ns` of simulated time.
    pub fn new(window_ns: u64) -> Self {
        BurnWindow {
            slot_ns: (window_ns / SLOTS as u64).max(1),
            slots: vec![Slot::empty(); SLOTS],
        }
    }

    /// Record one completion observed at sim time `at_ns` with latency
    /// `latency_ns`, against `objective_ns`.
    pub fn observe(&mut self, at_ns: u64, latency_ns: u64, objective_ns: u64) {
        let epoch = at_ns / self.slot_ns;
        let slot = &mut self.slots[(epoch % SLOTS as u64) as usize];
        match slot.epoch {
            Some(e) if e == epoch => {}
            Some(e) if e > epoch => return, // older than the resident epoch: expired
            _ => {
                slot.epoch = Some(epoch);
                slot.hist = Histogram::default();
                slot.bad = 0;
            }
        }
        slot.hist.observe(latency_ns);
        if latency_ns > objective_ns {
            slot.bad += 1;
        }
    }

    /// Window aggregates as of sim time `now_ns`.
    pub fn stats(&self, now_ns: u64) -> WindowStats {
        let cur = now_ns / self.slot_ns;
        let oldest = cur.saturating_sub(SLOTS as u64 - 1);
        let mut total = 0u64;
        let mut bad = 0u64;
        let mut merged = Histogram::default();
        for slot in &self.slots {
            match slot.epoch {
                Some(e) if e >= oldest && e <= cur => {
                    total += slot.hist.count;
                    bad += slot.bad;
                    merged.merge(&slot.hist);
                }
                _ => {}
            }
        }
        WindowStats {
            total,
            bad,
            p99_ns: merged.quantile_ns(0.99),
        }
    }

    /// Burn rate as of `now_ns`: (windowed bad fraction) / budget.
    /// 0.0 for an empty window.
    pub fn burn(&self, now_ns: u64, budget: f64) -> f64 {
        let s = self.stats(now_ns);
        if s.total == 0 || budget <= 0.0 {
            0.0
        } else {
            (s.bad as f64 / s.total as f64) / budget
        }
    }
}

/// One recorded anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Sim time of the anomaly in nanoseconds.
    pub at_ns: u64,
    /// Anomaly kind (`slo-burn`, `saturation`, `takeover`, ...).
    pub kind: String,
}

/// One flight-recorder frame: the health signals at one sample tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sim time of the sample in nanoseconds.
    pub at_ns: u64,
    /// Short-window burn rate.
    pub burn_short: f64,
    /// Long-window burn rate.
    pub burn_long: f64,
    /// Short-window p99 latency in nanoseconds.
    pub p99_short_ns: u64,
    /// Caller-supplied gauges (queue depths, live counts, hit rates).
    pub gauges: Vec<(String, f64)>,
}

/// Bounded ring of [`Frame`]s — O(capacity) memory however long the run.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    frames: VecDeque<Frame>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            frames: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append a frame, evicting the oldest at capacity.
    pub fn push(&mut self, frame: Frame) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
            self.dropped += 1;
        }
        self.frames.push_back(frame);
    }

    /// Current ring contents, oldest first.
    pub fn frames(&self) -> Vec<Frame> {
        self.frames.iter().cloned().collect()
    }

    /// Frames evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The flight-recorder snapshot taken at the first anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Sim time of the triggering anomaly.
    pub at_ns: u64,
    /// Kind of the triggering anomaly.
    pub kind: String,
    /// The recorder ring as it stood when the anomaly fired.
    pub frames: Vec<Frame>,
}

/// End-of-run health summary: the value attached to run reports and
/// dumped by `--flight-recorder`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The objective the burn windows measured against.
    pub objective_ns: u64,
    /// Completions observed.
    pub observed: u64,
    /// Completions over objective.
    pub violations: u64,
    /// Short-window burn rate at run end.
    pub burn_short: f64,
    /// Long-window burn rate at run end.
    pub burn_long: f64,
    /// Peak short-window burn rate over all samples.
    pub burn_short_peak: f64,
    /// Peak long-window burn rate over all samples.
    pub burn_long_peak: f64,
    /// Recorded anomalies, oldest first (bounded).
    pub anomalies: Vec<Anomaly>,
    /// Anomalies past the bound, counted only.
    pub anomalies_dropped: u64,
    /// The flight-recorder ring at run end, oldest first.
    pub frames: Vec<Frame>,
    /// Frames evicted from the ring before run end.
    pub frames_dropped: u64,
    /// Ring snapshot captured at the first anomaly, if any fired.
    pub incident: Option<Incident>,
}

impl HealthReport {
    /// Publish the headline burn-rate signals into `reg` under the
    /// `slo.burn.*` keys the CI smoke greps for.
    pub fn publish(&self, reg: &MetricsRegistry) {
        reg.set_gauge("slo.burn.short", self.burn_short);
        reg.set_gauge("slo.burn.long", self.burn_long);
        reg.set_gauge("slo.burn.short_peak", self.burn_short_peak);
        reg.set_gauge("slo.burn.long_peak", self.burn_long_peak);
        reg.record("slo.burn.violations", self.violations);
        reg.record("slo.burn.anomalies", self.anomalies.len() as u64);
    }
}

fn frames_value(frames: &[Frame]) -> Value {
    Value::Array(frames.iter().map(Serialize::to_value).collect())
}

impl Serialize for Frame {
    fn to_value(&self) -> Value {
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect();
        Value::Object(vec![
            ("at_ns".to_string(), Value::U64(self.at_ns)),
            ("burn_short".to_string(), Value::F64(self.burn_short)),
            ("burn_long".to_string(), Value::F64(self.burn_long)),
            ("p99_short_ns".to_string(), Value::U64(self.p99_short_ns)),
            ("gauges".to_string(), Value::Object(gauges)),
        ])
    }
}

impl Serialize for Anomaly {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("at_ns".to_string(), Value::U64(self.at_ns)),
            ("kind".to_string(), Value::Str(self.kind.clone())),
        ])
    }
}

impl Serialize for Incident {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("at_ns".to_string(), Value::U64(self.at_ns)),
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("frames".to_string(), frames_value(&self.frames)),
        ])
    }
}

impl Serialize for HealthReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("objective_ns".to_string(), Value::U64(self.objective_ns)),
            ("observed".to_string(), Value::U64(self.observed)),
            ("violations".to_string(), Value::U64(self.violations)),
            ("burn_short".to_string(), Value::F64(self.burn_short)),
            ("burn_long".to_string(), Value::F64(self.burn_long)),
            (
                "burn_short_peak".to_string(),
                Value::F64(self.burn_short_peak),
            ),
            (
                "burn_long_peak".to_string(),
                Value::F64(self.burn_long_peak),
            ),
            (
                "anomalies".to_string(),
                Value::Array(self.anomalies.iter().map(Serialize::to_value).collect()),
            ),
            (
                "anomalies_dropped".to_string(),
                Value::U64(self.anomalies_dropped),
            ),
            ("frames".to_string(), frames_value(&self.frames)),
            (
                "frames_dropped".to_string(),
                Value::U64(self.frames_dropped),
            ),
            (
                "incident".to_string(),
                match &self.incident {
                    Some(i) => i.to_value(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// A live health plane: two burn windows, sample scheduling, anomaly
/// edge detection, and the flight recorder, driven by an executor's own
/// completion stream.
#[derive(Debug, Clone)]
pub struct HealthPlane {
    spec: HealthSpec,
    short: BurnWindow,
    long: BurnWindow,
    observed: u64,
    violations: u64,
    burn_short_peak: f64,
    burn_long_peak: f64,
    next_sample_ns: u64,
    burn_alarm: bool,
    recorder: FlightRecorder,
    anomalies: Vec<Anomaly>,
    anomalies_dropped: u64,
    incident: Option<Incident>,
}

impl HealthPlane {
    /// A fresh plane for `spec`.
    pub fn new(spec: &HealthSpec) -> Self {
        HealthPlane {
            spec: *spec,
            short: BurnWindow::new(spec.short_window_ns),
            long: BurnWindow::new(spec.long_window_ns),
            observed: 0,
            violations: 0,
            burn_short_peak: 0.0,
            burn_long_peak: 0.0,
            next_sample_ns: 0,
            burn_alarm: false,
            recorder: FlightRecorder::new(spec.recorder_capacity),
            anomalies: Vec::new(),
            anomalies_dropped: 0,
            incident: None,
        }
    }

    /// The spec this plane runs under.
    pub fn spec(&self) -> &HealthSpec {
        &self.spec
    }

    /// Feed one completion: observed at sim time `at_ns`, end-to-end
    /// latency `latency_ns`.
    pub fn observe(&mut self, at_ns: u64, latency_ns: u64) {
        self.observed += 1;
        if latency_ns > self.spec.objective_ns {
            self.violations += 1;
        }
        self.short
            .observe(at_ns, latency_ns, self.spec.objective_ns);
        self.long.observe(at_ns, latency_ns, self.spec.objective_ns);
    }

    /// True when the next sample tick is due at sim time `at_ns`.
    /// Callers poll this from their own loop; sampling stays on the
    /// executor's deterministic clock, never a wall clock.
    pub fn due(&self, at_ns: u64) -> bool {
        at_ns >= self.next_sample_ns
    }

    /// Take one flight-recorder sample at sim time `at_ns`, attaching
    /// the caller's `gauges`. Also runs burn-threshold edge detection.
    pub fn sample(&mut self, at_ns: u64, gauges: Vec<(String, f64)>) {
        let burn_short = self.short.burn(at_ns, self.spec.budget);
        let burn_long = self.long.burn(at_ns, self.spec.budget);
        self.burn_short_peak = self.burn_short_peak.max(burn_short);
        self.burn_long_peak = self.burn_long_peak.max(burn_long);
        let p99_short_ns = self.short.stats(at_ns).p99_ns;
        self.recorder.push(Frame {
            at_ns,
            burn_short,
            burn_long,
            p99_short_ns,
            gauges,
        });
        // Aligned to absolute ticks so the schedule is a function of
        // sim time alone (bit-identical across shard counts).
        self.next_sample_ns = (at_ns / self.spec.sample_every_ns + 1) * self.spec.sample_every_ns;
        if burn_short > self.spec.burn_threshold {
            if !self.burn_alarm {
                self.burn_alarm = true;
                self.anomaly(at_ns, "slo-burn");
            }
        } else {
            self.burn_alarm = false;
        }
    }

    /// Record an anomaly (`saturation`, `takeover`, ...). The first one
    /// snapshots the flight-recorder ring as the incident record.
    pub fn anomaly(&mut self, at_ns: u64, kind: &str) {
        if self.incident.is_none() {
            self.incident = Some(Incident {
                at_ns,
                kind: kind.to_string(),
                frames: self.recorder.frames(),
            });
        }
        if self.anomalies.len() < MAX_ANOMALIES {
            self.anomalies.push(Anomaly {
                at_ns,
                kind: kind.to_string(),
            });
        } else {
            self.anomalies_dropped += 1;
        }
    }

    /// Finish the run at sim time `end_ns`, consuming the plane into
    /// its report.
    pub fn finish(mut self, end_ns: u64) -> HealthReport {
        let burn_short = self.short.burn(end_ns, self.spec.budget);
        let burn_long = self.long.burn(end_ns, self.spec.budget);
        self.burn_short_peak = self.burn_short_peak.max(burn_short);
        self.burn_long_peak = self.burn_long_peak.max(burn_long);
        HealthReport {
            objective_ns: self.spec.objective_ns,
            observed: self.observed,
            violations: self.violations,
            burn_short,
            burn_long,
            burn_short_peak: self.burn_short_peak,
            burn_long_peak: self.burn_long_peak,
            anomalies: self.anomalies,
            anomalies_dropped: self.anomalies_dropped,
            frames: self.recorder.frames(),
            frames_dropped: self.recorder.dropped(),
            incident: self.incident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn spec() -> HealthSpec {
        HealthSpec {
            objective_ns: 100_000_000, // 100 ms
            budget: 0.1,
            short_window_ns: 30 * S, // 1 s slots
            long_window_ns: 300 * S,
            burn_threshold: 5.0,
            sample_every_ns: S,
            recorder_capacity: 4,
        }
    }

    #[test]
    fn burn_window_counts_bad_fraction() {
        let mut w = BurnWindow::new(30 * S);
        for i in 0..10 {
            // 2 of 10 over a 100 ms objective.
            let lat = if i < 2 { 200_000_000 } else { 50_000_000 };
            w.observe(i * S / 10, lat, 100_000_000);
        }
        let s = w.stats(S);
        assert_eq!((s.total, s.bad), (10, 2));
        // bad fraction 0.2 over budget 0.1 → burn 2.0.
        assert!((w.burn(S, 0.1) - 2.0).abs() < 1e-12);
        assert!(s.p99_ns >= 100_000_000);
    }

    #[test]
    fn burn_window_expires_old_epochs() {
        let mut w = BurnWindow::new(30 * S); // slot = 1 s
        w.observe(0, 200_000_000, 100_000_000);
        // 40 s later the epoch-0 slot is out of window.
        let s = w.stats(40 * S);
        assert_eq!(s.total, 0);
        assert_eq!(w.burn(40 * S, 0.1), 0.0);
    }

    #[test]
    fn burn_window_state_is_order_independent() {
        let obs: Vec<(u64, u64)> = vec![
            (5 * S, 50_000_000),
            (90 * S, 200_000_000), // evicts the epoch-5 slot's era... eventually
            (5 * S + 100, 70_000_000),
            (91 * S, 40_000_000),
            (35 * S, 300_000_000),
        ];
        let mut fwd = BurnWindow::new(30 * S);
        let mut rev = BurnWindow::new(30 * S);
        for &(at, lat) in &obs {
            fwd.observe(at, lat, 100_000_000);
        }
        for &(at, lat) in obs.iter().rev() {
            rev.observe(at, lat, 100_000_000);
        }
        for now in [(91) * S, 100 * S, 200 * S] {
            assert_eq!(fwd.stats(now), rev.stats(now));
        }
    }

    #[test]
    fn plane_samples_detect_burn_and_record_incident() {
        let mut p = HealthPlane::new(&spec());
        assert!(p.due(0));
        // All completions bad: bad fraction 1.0 / budget 0.1 = burn 10.
        for i in 0..20u64 {
            p.observe(i * S / 4, 500_000_000);
            if p.due(i * S / 4) {
                p.sample(i * S / 4, vec![("live".to_string(), i as f64)]);
            }
        }
        let rep = p.finish(6 * S);
        assert_eq!(rep.observed, 20);
        assert_eq!(rep.violations, 20);
        assert!(rep.burn_short_peak > 5.0);
        assert!(rep.anomalies.iter().any(|a| a.kind == "slo-burn"));
        let inc = rep.incident.expect("burn anomaly snapshots the ring");
        assert_eq!(inc.kind, "slo-burn");
        // Ring bounded at capacity 4 regardless of sample count.
        assert!(rep.frames.len() <= 4);
        assert!(rep.frames_dropped > 0);
    }

    #[test]
    fn anomalies_are_bounded() {
        let mut p = HealthPlane::new(&spec());
        for i in 0..(MAX_ANOMALIES as u64 + 10) {
            p.anomaly(i, "takeover");
        }
        let rep = p.finish(S);
        assert_eq!(rep.anomalies.len(), MAX_ANOMALIES);
        assert_eq!(rep.anomalies_dropped, 10);
        assert_eq!(rep.incident.unwrap().at_ns, 0);
    }

    #[test]
    fn report_publishes_burn_keys_and_serializes() {
        let mut p = HealthPlane::new(&spec());
        p.observe(0, 500_000_000);
        p.sample(0, vec![]);
        let rep = p.finish(S);
        let reg = MetricsRegistry::new();
        rep.publish(&reg);
        let snap = reg.snapshot();
        assert!(snap.gauge("slo.burn.short").is_some());
        assert!(snap.gauge("slo.burn.long_peak").is_some());
        assert_eq!(snap.counter("slo.burn.violations"), 1);
        let text = serde_json::to_string(&rep.to_value()).unwrap();
        serde_json::parse(&text).expect("flight-recorder dump is valid JSON");
        assert!(text.contains("burn_short"));
    }
}
