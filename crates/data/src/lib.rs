//! # continuum-data
//!
//! Data fabric for the `coding-the-continuum` reproduction — the Globus
//! analogue. Logical data objects are registered in a [`ReplicaCatalog`];
//! the [`StagingService`] makes an object present at any node via
//! replica selection, per-site LRU [`SiteCache`]s, and integrity-checked,
//! retrying transfers ([`TransferManager`]).
//!
//! Experiment T2 quantifies the fabric: bytes moved, hit rate, and mean
//! stage-in latency with and without caching and cooperative replication.

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod stage;
pub mod transfer;

pub use cache::SiteCache;
pub use catalog::{expected_checksum, DataKey, Replica, ReplicaCatalog};
pub use stage::{StageOutcome, StagingConfig, StagingService};
pub use transfer::{TransferError, TransferManager, TransferRecord};
