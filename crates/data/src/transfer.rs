//! Transfer manager: integrity-checked, retrying point-to-point moves.
//!
//! Transfers use the analytic path model (propagation latency plus
//! serialization at the bottleneck). Each transfer is checksum-verified on
//! arrival; a configurable corruption probability injects failures, which
//! are retried up to a bound — the behaviour a production transfer fabric
//! (our Globus stand-in) must exhibit.

use crate::catalog::{expected_checksum, DataKey};
use continuum_net::{NodeId, RouteTable, Topology};
use continuum_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of one logical transfer (including retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Object moved.
    pub key: DataKey,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Object size, bytes.
    pub bytes: u64,
    /// Attempts made (1 = clean first try).
    pub attempts: u32,
    /// When the verified copy was available at `dst`.
    pub completed_at: SimTime,
}

/// Error from [`TransferManager::transfer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// No route between the endpoints.
    Unreachable,
    /// Every attempt failed the integrity check.
    IntegrityExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Unreachable => write!(f, "no route between endpoints"),
            TransferError::IntegrityExhausted { attempts } => {
                write!(f, "integrity check failed {attempts} times")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// Executes transfers and accumulates fabric-wide statistics.
#[derive(Debug)]
pub struct TransferManager {
    corruption_prob: f64,
    max_attempts: u32,
    rng: Rng,
    /// Total payload bytes that crossed the network (includes retries).
    pub bytes_on_wire: u64,
    /// Completed logical transfers.
    pub completed: u64,
    /// Total retry attempts beyond the first.
    pub retries: u64,
}

impl TransferManager {
    /// Manager with a corruption probability per attempt and a retry bound.
    pub fn new(seed: u64, corruption_prob: f64, max_attempts: u32) -> Self {
        assert!((0.0..1.0).contains(&corruption_prob));
        assert!(max_attempts >= 1);
        TransferManager {
            corruption_prob,
            max_attempts,
            rng: Rng::new(seed),
            bytes_on_wire: 0,
            completed: 0,
            retries: 0,
        }
    }

    /// Reliable manager: no injected corruption.
    pub fn reliable(seed: u64) -> Self {
        Self::new(seed, 0.0, 1)
    }

    /// Move `key` (`bytes` long) from `src` to `dst`, starting at `now`.
    ///
    /// Returns the completed record, or an error if unroutable / retries
    /// exhausted. A same-node transfer completes instantly and skips the
    /// integrity machinery.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        topo: &Topology,
        routes: &RouteTable,
        now: SimTime,
        key: DataKey,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferRecord, TransferError> {
        if src == dst {
            return Ok(TransferRecord {
                key,
                src,
                dst,
                bytes,
                attempts: 0,
                completed_at: now,
            });
        }
        let path = routes
            .path(topo, src, dst)
            .ok_or(TransferError::Unreachable)?;
        let one_attempt: SimDuration = path.transfer_time(bytes);
        let mut t = now;
        for attempt in 1..=self.max_attempts {
            t += one_attempt;
            self.bytes_on_wire += bytes;
            // Simulated integrity check: the receiver recomputes the
            // checksum; corruption flips it.
            let received = if self.rng.chance(self.corruption_prob) {
                expected_checksum(key) ^ 0xDEAD_BEEF
            } else {
                expected_checksum(key)
            };
            if received == expected_checksum(key) {
                self.completed += 1;
                self.retries += (attempt - 1) as u64;
                return Ok(TransferRecord {
                    key,
                    src,
                    dst,
                    bytes,
                    attempts: attempt,
                    completed_at: t,
                });
            }
        }
        Err(TransferError::IntegrityExhausted {
            attempts: self.max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_net::Tier;

    fn pair() -> (Topology, RouteTable, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(10), 1e6);
        let rt = RouteTable::build(&t);
        (t, rt, a, b)
    }

    #[test]
    fn clean_transfer_time() {
        let (t, rt, a, b) = pair();
        let mut tm = TransferManager::reliable(1);
        let rec = tm
            .transfer(&t, &rt, SimTime::ZERO, DataKey(1), a, b, 1_000_000)
            .unwrap();
        assert_eq!(rec.attempts, 1);
        // 10ms + 1s serialization.
        assert!((rec.completed_at.as_secs_f64() - 1.01).abs() < 1e-6);
        assert_eq!(tm.bytes_on_wire, 1_000_000);
    }

    #[test]
    fn same_node_is_free() {
        let (t, rt, a, _) = pair();
        let mut tm = TransferManager::reliable(1);
        let rec = tm
            .transfer(&t, &rt, SimTime::from_secs(5), DataKey(1), a, a, 123)
            .unwrap();
        assert_eq!(rec.completed_at, SimTime::from_secs(5));
        assert_eq!(tm.bytes_on_wire, 0);
    }

    #[test]
    fn corruption_forces_retries() {
        let (t, rt, a, b) = pair();
        let mut tm = TransferManager::new(7, 0.5, 20);
        let mut total_attempts = 0;
        for k in 0..50 {
            let rec = tm
                .transfer(&t, &rt, SimTime::ZERO, DataKey(k), a, b, 1000)
                .unwrap();
            total_attempts += rec.attempts;
        }
        // Expected ~2 attempts per transfer at p=0.5.
        assert!(total_attempts > 60, "attempts {total_attempts}");
        assert!(tm.retries > 0);
        assert_eq!(tm.completed, 50);
    }

    #[test]
    fn retry_pays_time() {
        let (t, rt, a, b) = pair();
        // Corruption certain on every attempt except we allow 3 attempts;
        // use p close to 1 but deterministic via seed scan: simpler —
        // p=0.9999 will essentially always exhaust.
        let mut tm = TransferManager::new(3, 0.999, 3);
        let err = tm.transfer(&t, &rt, SimTime::ZERO, DataKey(1), a, b, 1000);
        assert_eq!(err, Err(TransferError::IntegrityExhausted { attempts: 3 }));
    }

    #[test]
    fn unreachable_detected() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Edge);
        let rt = RouteTable::build(&t);
        let mut tm = TransferManager::reliable(1);
        let err = tm.transfer(&t, &rt, SimTime::ZERO, DataKey(1), a, b, 1);
        assert_eq!(err, Err(TransferError::Unreachable));
    }
}
