//! Per-site LRU caches, capacity-bounded in bytes.

use crate::catalog::DataKey;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A byte-capacity LRU cache of data objects at one site.
///
/// Recency is tracked with a monotonic counter; eviction removes the least
/// recently used entries until the new object fits. Objects larger than the
/// whole cache are rejected (never cached).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteCache {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: HashMap<DataKey, CacheEntry>,
    /// Statistics.
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct CacheEntry {
    bytes: u64,
    last_used: u64,
    pinned: bool,
}

impl SiteCache {
    /// Cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        SiteCache {
            capacity,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, updating recency and hit/miss counters.
    pub fn get(&mut self, key: DataKey) -> bool {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Check presence without touching recency or counters.
    pub fn contains(&self, key: DataKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Insert an object, evicting LRU *unpinned* entries as needed.
    /// Returns the keys evicted. Objects larger than the capacity, or
    /// that cannot fit without evicting pinned entries, are not cached
    /// (empty eviction list, nothing inserted).
    ///
    /// Re-putting a cached key refreshes its recency and adopts the new
    /// size: shrinks apply in place, grows go through the eviction path
    /// (preserving pin state), and either way `used` tracks reality. An
    /// *unpinned* grow that cannot fit drops the entry — the old bytes
    /// are stale; a *pinned* grow that cannot fit keeps the old version,
    /// honoring the never-evict-pinned contract.
    pub fn put(&mut self, key: DataKey, bytes: u64) -> Vec<DataKey> {
        self.tick += 1;
        let mut pinned = false;
        if let Some(&CacheEntry {
            bytes: old,
            pinned: was_pinned,
            ..
        }) = self.entries.get(&key)
        {
            if bytes <= old {
                let e = self.entries.get_mut(&key).expect("present");
                e.bytes = bytes;
                e.last_used = self.tick;
                self.used -= old - bytes;
                return Vec::new();
            }
            if was_pinned {
                let other_pinned: u64 = self
                    .entries
                    .iter()
                    .filter(|(&k, e)| e.pinned && k != key)
                    .map(|(_, e)| e.bytes)
                    .sum();
                if other_pinned + bytes > self.capacity {
                    // The grown object can never fit without evicting a
                    // pinned entry; keep the old pinned version.
                    self.entries.get_mut(&key).expect("present").last_used = self.tick;
                    return Vec::new();
                }
            }
            pinned = was_pinned;
            self.entries.remove(&key);
            self.used -= old;
        }
        if bytes > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity {
            let lru = self
                .entries
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(k, e)| (e.last_used, k.0))
                .map(|(&k, _)| k);
            let Some(lru) = lru else {
                // Only pinned entries remain: there is no room; refuse to
                // cache the new object. (Any unpinned entries evicted on
                // the way stay evicted — they were LRU regardless.)
                return evicted;
            };
            let e = self.entries.remove(&lru).expect("just found");
            self.used -= e.bytes;
            self.evictions += 1;
            evicted.push(lru);
        }
        self.entries.insert(
            key,
            CacheEntry {
                bytes,
                last_used: self.tick,
                pinned,
            },
        );
        self.used += bytes;
        evicted
    }

    /// Pin an object: it will never be evicted until unpinned. Returns
    /// `false` if the key is not cached.
    pub fn pin(&mut self, key: DataKey) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Unpin an object. Returns `false` if the key is not cached.
    pub fn unpin(&mut self, key: DataKey) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.pinned = false;
                true
            }
            None => false,
        }
    }

    /// Bytes held by pinned entries.
    pub fn pinned_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.pinned)
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hit rate in `[0, 1]` (0 if no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = SiteCache::new(100);
        assert!(!c.get(DataKey(1)));
        c.put(DataKey(1), 40);
        assert!(c.get(DataKey(1)));
        assert_eq!(c.stats(), (1, 1, 0));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_first() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 40);
        c.put(DataKey(2), 40);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(DataKey(1)));
        let evicted = c.put(DataKey(3), 40);
        assert_eq!(evicted, vec![DataKey(2)]);
        assert!(c.contains(DataKey(1)));
        assert!(c.contains(DataKey(3)));
        assert_eq!(c.used_bytes(), 80);
    }

    #[test]
    fn evicts_multiple_for_large_object() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 30);
        c.put(DataKey(2), 30);
        c.put(DataKey(3), 30);
        // 90 bytes cached; fitting 80 more requires evicting all three.
        let evicted = c.put(DataKey(4), 80);
        assert_eq!(evicted.len(), 3);
        assert!(c.contains(DataKey(4)));
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = SiteCache::new(100);
        let evicted = c.put(DataKey(1), 200);
        assert!(evicted.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_recency() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 50);
        c.put(DataKey(2), 50);
        c.put(DataKey(1), 50); // refresh 1
        let evicted = c.put(DataKey(3), 50);
        assert_eq!(evicted, vec![DataKey(2)]);
    }

    #[test]
    fn reinsert_at_new_size_updates_used() {
        // Regression: re-putting a cached key used to bump recency only,
        // so `used` drifted from the sum of entry sizes.
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 60);
        c.put(DataKey(1), 20); // shrank
        assert_eq!(c.used_bytes(), 20);
        c.put(DataKey(1), 90); // grew, still fits alone
        assert_eq!(c.used_bytes(), 90);

        // Growing must evict LRU entries — but never the key itself.
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 40);
        c.put(DataKey(2), 40);
        let evicted = c.put(DataKey(1), 70); // needs room: 2 is LRU
        assert_eq!(evicted, vec![DataKey(2)]);
        assert!(c.contains(DataKey(1)));
        assert_eq!(c.used_bytes(), 70);
    }

    #[test]
    fn reinsert_grow_respects_pins() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 30);
        assert!(c.pin(DataKey(1)));
        c.put(DataKey(1), 50);
        assert_eq!(c.pinned_bytes(), 50, "grow must keep the pin");
        // A *pinned* grow that cannot fit keeps the old version: pinned
        // entries never vanish.
        c.put(DataKey(2), 40);
        assert!(c.pin(DataKey(2)));
        let evicted = c.put(DataKey(2), 80); // 50 pinned + 80 > 100
        assert!(evicted.is_empty());
        assert!(c.contains(DataKey(2)));
        assert_eq!(c.used_bytes(), 90);
        assert_eq!(c.pinned_bytes(), 90);
    }

    #[test]
    fn reinsert_grow_unpinned_blocked_drops_stale_entry() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 90);
        assert!(c.pin(DataKey(1)));
        c.put(DataKey(2), 10);
        // Growing unpinned 2 can't fit next to pinned 1; the stale 10-byte
        // version is dropped rather than kept masquerading as current.
        let evicted = c.put(DataKey(2), 20);
        assert!(evicted.is_empty());
        assert!(!c.contains(DataKey(2)));
        assert_eq!(c.used_bytes(), 90);
    }
}
