//! Per-site LRU caches, capacity-bounded in bytes.

use crate::catalog::DataKey;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A byte-capacity LRU cache of data objects at one site.
///
/// Recency is tracked with a monotonic counter; eviction removes the least
/// recently used entries until the new object fits. Objects larger than the
/// whole cache are rejected (never cached).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteCache {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: HashMap<DataKey, CacheEntry>,
    /// Statistics.
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct CacheEntry {
    bytes: u64,
    last_used: u64,
    pinned: bool,
}

impl SiteCache {
    /// Cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        SiteCache {
            capacity,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, updating recency and hit/miss counters.
    pub fn get(&mut self, key: DataKey) -> bool {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Check presence without touching recency or counters.
    pub fn contains(&self, key: DataKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Insert an object, evicting LRU *unpinned* entries as needed.
    /// Returns the keys evicted. Objects larger than the capacity, or
    /// that cannot fit without evicting pinned entries, are not cached
    /// (empty eviction list, nothing inserted).
    pub fn put(&mut self, key: DataKey, bytes: u64) -> Vec<DataKey> {
        self.tick += 1;
        if bytes > self.capacity {
            return Vec::new();
        }
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = self.tick;
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity {
            let lru = self
                .entries
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(k, e)| (e.last_used, k.0))
                .map(|(&k, _)| k);
            let Some(lru) = lru else {
                // Only pinned entries remain: there is no room; refuse to
                // cache the new object. (Any unpinned entries evicted on
                // the way stay evicted — they were LRU regardless.)
                return evicted;
            };
            let e = self.entries.remove(&lru).expect("just found");
            self.used -= e.bytes;
            self.evictions += 1;
            evicted.push(lru);
        }
        self.entries.insert(
            key,
            CacheEntry {
                bytes,
                last_used: self.tick,
                pinned: false,
            },
        );
        self.used += bytes;
        evicted
    }

    /// Pin an object: it will never be evicted until unpinned. Returns
    /// `false` if the key is not cached.
    pub fn pin(&mut self, key: DataKey) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Unpin an object. Returns `false` if the key is not cached.
    pub fn unpin(&mut self, key: DataKey) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.pinned = false;
                true
            }
            None => false,
        }
    }

    /// Bytes held by pinned entries.
    pub fn pinned_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.pinned)
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hit rate in `[0, 1]` (0 if no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = SiteCache::new(100);
        assert!(!c.get(DataKey(1)));
        c.put(DataKey(1), 40);
        assert!(c.get(DataKey(1)));
        assert_eq!(c.stats(), (1, 1, 0));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_first() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 40);
        c.put(DataKey(2), 40);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(DataKey(1)));
        let evicted = c.put(DataKey(3), 40);
        assert_eq!(evicted, vec![DataKey(2)]);
        assert!(c.contains(DataKey(1)));
        assert!(c.contains(DataKey(3)));
        assert_eq!(c.used_bytes(), 80);
    }

    #[test]
    fn evicts_multiple_for_large_object() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 30);
        c.put(DataKey(2), 30);
        c.put(DataKey(3), 30);
        // 90 bytes cached; fitting 80 more requires evicting all three.
        let evicted = c.put(DataKey(4), 80);
        assert_eq!(evicted.len(), 3);
        assert!(c.contains(DataKey(4)));
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = SiteCache::new(100);
        let evicted = c.put(DataKey(1), 200);
        assert!(evicted.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_recency_not_size() {
        let mut c = SiteCache::new(100);
        c.put(DataKey(1), 50);
        c.put(DataKey(2), 50);
        c.put(DataKey(1), 50); // refresh 1
        let evicted = c.put(DataKey(3), 50);
        assert_eq!(evicted, vec![DataKey(2)]);
    }
}
