//! The staging service: cache-aware, replica-selecting data delivery.
//!
//! `stage(key, dst)` is the fabric's one verb: make the object present at
//! `dst` and say when it will be there. The service checks the site cache,
//! falls back to the cheapest catalog replica, transfers with integrity
//! retries, and (optionally) registers the new copy as a replica so later
//! consumers anywhere benefit — the behaviour experiment T2 quantifies.

use crate::cache::SiteCache;
use crate::catalog::{DataKey, ReplicaCatalog};
use crate::transfer::{TransferError, TransferManager};
use continuum_net::{NodeId, RouteTable, Topology};
use continuum_sim::SimTime;
use std::collections::HashMap;

/// Configuration of the staging service.
#[derive(Debug, Clone, Copy)]
pub struct StagingConfig {
    /// Per-site cache capacity, bytes. Zero disables caching.
    pub cache_bytes: u64,
    /// Register cached copies as replicas (cooperative caching).
    pub replicate: bool,
    /// Corruption probability per transfer attempt.
    pub corruption_prob: f64,
    /// Retry bound per transfer.
    pub max_attempts: u32,
}

impl Default for StagingConfig {
    fn default() -> Self {
        StagingConfig {
            cache_bytes: 8 << 30,
            replicate: true,
            corruption_prob: 0.0,
            max_attempts: 3,
        }
    }
}

/// Result of one staging request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageOutcome {
    /// When the object is usable at the destination.
    pub ready_at: SimTime,
    /// Where it came from (`None` for a cache/local hit at `dst`).
    pub source: Option<NodeId>,
    /// True if served without a network transfer.
    pub hit: bool,
}

/// The staging service.
///
/// ```
/// use continuum_data::{DataKey, ReplicaCatalog, StagingConfig, StagingService};
/// use continuum_net::{LinkSpec, RouteTable};
/// use continuum_sim::{SimDuration, SimTime};
///
/// let (topo, hub, spokes) =
///     continuum_net::star(2, LinkSpec::new(SimDuration::from_millis(10), 1e6));
/// let routes = RouteTable::build(&topo);
/// let mut catalog = ReplicaCatalog::new();
/// catalog.register(DataKey(0), hub, 500_000); // object lives at the hub
///
/// let mut svc = StagingService::new(catalog, StagingConfig::default(), 1);
/// let first = svc.stage(&topo, &routes, SimTime::ZERO, DataKey(0), spokes[0]).unwrap();
/// assert!(!first.hit); // pulled over the network
/// let again = svc.stage(&topo, &routes, first.ready_at, DataKey(0), spokes[0]).unwrap();
/// assert!(again.hit); // served from the site cache
/// ```
#[derive(Debug)]
pub struct StagingService {
    /// The replica catalog (public for inspection in tests/benches).
    pub catalog: ReplicaCatalog,
    caches: HashMap<NodeId, SiteCache>,
    xfer: TransferManager,
    config: StagingConfig,
    /// Total staging requests served.
    pub requests: u64,
    /// Requests served locally (cache or resident replica).
    pub local_hits: u64,
    /// Sum of stage latencies, seconds (for means).
    pub total_latency_s: f64,
}

impl StagingService {
    /// Service over a catalog with the given config.
    pub fn new(catalog: ReplicaCatalog, config: StagingConfig, seed: u64) -> Self {
        StagingService {
            catalog,
            caches: HashMap::new(),
            xfer: TransferManager::new(seed, config.corruption_prob, config.max_attempts),
            config,
            requests: 0,
            local_hits: 0,
            total_latency_s: 0.0,
        }
    }

    fn cache_for(&mut self, node: NodeId) -> &mut SiteCache {
        let cap = self.config.cache_bytes;
        self.caches
            .entry(node)
            .or_insert_with(|| SiteCache::new(cap))
    }

    /// Make `key` present at `dst` starting at `now`.
    pub fn stage(
        &mut self,
        topo: &Topology,
        routes: &RouteTable,
        now: SimTime,
        key: DataKey,
        dst: NodeId,
    ) -> Result<StageOutcome, TransferError> {
        self.requests += 1;

        // 1. Resident replica at the destination?
        if self.catalog.replicas(key).iter().any(|r| r.node == dst) {
            self.local_hits += 1;
            return Ok(StageOutcome {
                ready_at: now,
                source: None,
                hit: true,
            });
        }
        // 2. Site cache?
        if self.config.cache_bytes > 0 && self.cache_for(dst).get(key) {
            self.local_hits += 1;
            return Ok(StageOutcome {
                ready_at: now,
                source: None,
                hit: true,
            });
        }
        // 3. Pull from the cheapest replica.
        let (replica, _) = self
            .catalog
            .best_replica(topo, routes, key, dst)
            .ok_or(TransferError::Unreachable)?;
        let rec = self
            .xfer
            .transfer(topo, routes, now, key, replica.node, dst, replica.bytes)?;
        let latency = rec.completed_at.since(now).as_secs_f64();
        self.total_latency_s += latency;
        // 4. Populate cache (and maybe the catalog).
        if self.config.cache_bytes > 0 {
            let evicted = self.cache_for(dst).put(key, replica.bytes);
            if self.config.replicate {
                self.catalog.register(key, dst, replica.bytes);
                for ev in evicted {
                    self.catalog.unregister(ev, dst);
                }
            }
        }
        Ok(StageOutcome {
            ready_at: rec.completed_at,
            source: Some(replica.node),
            hit: false,
        })
    }

    /// Stage `key` at `dst` and pin it in the site cache so it can never
    /// be evicted (hot models, calibration tables). Returns the staging
    /// outcome; the pin is a no-op if caching is disabled.
    pub fn stage_pinned(
        &mut self,
        topo: &Topology,
        routes: &RouteTable,
        now: SimTime,
        key: DataKey,
        dst: NodeId,
    ) -> Result<StageOutcome, TransferError> {
        let out = self.stage(topo, routes, now, key, dst)?;
        if self.config.cache_bytes > 0 {
            self.cache_for(dst).pin(key);
        }
        Ok(out)
    }

    /// Unpin a previously pinned object at `dst`. Returns `false` if it
    /// was not cached there.
    pub fn unpin(&mut self, dst: NodeId, key: DataKey) -> bool {
        if self.config.cache_bytes == 0 {
            return false;
        }
        self.cache_for(dst).unpin(key)
    }

    /// Prefetch several keys to `dst`, warming the cache ahead of use.
    /// Returns the time the *last* object is resident. Prefetches are
    /// excluded from the hit/latency statistics (they are background
    /// traffic, not demand requests).
    pub fn prefetch(
        &mut self,
        topo: &Topology,
        routes: &RouteTable,
        now: SimTime,
        keys: &[DataKey],
        dst: NodeId,
    ) -> Result<SimTime, TransferError> {
        let (req0, hit0, lat0) = (self.requests, self.local_hits, self.total_latency_s);
        let mut done = now;
        for &k in keys {
            let out = self.stage(topo, routes, now, k, dst)?;
            done = done.max(out.ready_at);
        }
        // Roll back the statistics the prefetch inflated.
        self.requests = req0;
        self.local_hits = hit0;
        self.total_latency_s = lat0;
        Ok(done)
    }

    /// Fraction of requests served without a transfer.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.local_hits as f64 / self.requests as f64
        }
    }

    /// Total payload bytes that crossed the network (including retries).
    pub fn bytes_on_wire(&self) -> u64 {
        self.xfer.bytes_on_wire
    }

    /// Mean latency of the requests that did transfer, seconds.
    pub fn mean_transfer_latency_s(&self) -> f64 {
        let transfers = self.requests - self.local_hits;
        if transfers == 0 {
            0.0
        } else {
            self.total_latency_s / transfers as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_net::Topology;
    use continuum_sim::SimDuration;

    /// hub-and-spoke: data home at the hub, consumers at spokes.
    fn world() -> (Topology, RouteTable, NodeId, Vec<NodeId>) {
        let (topo, hub, spokes) = continuum_net::star(
            4,
            continuum_net::LinkSpec::new(SimDuration::from_millis(10), 1e6),
        );
        let rt = RouteTable::build(&topo);
        (topo, rt, hub, spokes)
    }

    fn seeded_catalog(hub: NodeId, keys: u64, bytes: u64) -> ReplicaCatalog {
        let mut cat = ReplicaCatalog::new();
        for k in 0..keys {
            cat.register(DataKey(k), hub, bytes);
        }
        cat
    }

    #[test]
    fn first_access_transfers_second_hits() {
        let (topo, rt, hub, spokes) = world();
        let mut svc =
            StagingService::new(seeded_catalog(hub, 4, 100_000), StagingConfig::default(), 1);
        let o1 = svc
            .stage(&topo, &rt, SimTime::ZERO, DataKey(0), spokes[0])
            .unwrap();
        assert!(!o1.hit);
        assert_eq!(o1.source, Some(hub));
        assert!(o1.ready_at > SimTime::ZERO);
        let o2 = svc
            .stage(&topo, &rt, o1.ready_at, DataKey(0), spokes[0])
            .unwrap();
        assert!(o2.hit);
        assert_eq!(o2.ready_at, o1.ready_at);
        assert!((svc.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_cache_always_transfers() {
        let (topo, rt, hub, spokes) = world();
        let cfg = StagingConfig {
            cache_bytes: 0,
            ..Default::default()
        };
        let mut svc = StagingService::new(seeded_catalog(hub, 1, 50_000), cfg, 1);
        for _ in 0..5 {
            let o = svc
                .stage(&topo, &rt, SimTime::ZERO, DataKey(0), spokes[0])
                .unwrap();
            assert!(!o.hit);
        }
        assert_eq!(svc.hit_rate(), 0.0);
        assert_eq!(svc.bytes_on_wire(), 5 * 50_000);
    }

    #[test]
    fn replication_serves_siblings_from_nearest() {
        let (topo, rt, hub, spokes) = world();
        let cfg = StagingConfig {
            replicate: true,
            ..Default::default()
        };
        let mut svc = StagingService::new(seeded_catalog(hub, 1, 10_000), cfg, 1);
        // Spoke 0 pulls; now spoke 0 holds a replica.
        svc.stage(&topo, &rt, SimTime::ZERO, DataKey(0), spokes[0])
            .unwrap();
        // Hub is 1 hop from any spoke; spoke0 is 2 hops. Best replica for
        // spoke1 is still the hub, but spoke0's copy exists in the catalog.
        assert_eq!(svc.catalog.replicas(DataKey(0)).len(), 2);
        // Staging *to the hub itself* is now a resident-replica hit.
        let o = svc
            .stage(&topo, &rt, SimTime::ZERO, DataKey(0), hub)
            .unwrap();
        assert!(o.hit);
    }

    #[test]
    fn eviction_unregisters_replica() {
        let (topo, rt, hub, spokes) = world();
        let cfg = StagingConfig {
            cache_bytes: 150_000,
            replicate: true,
            ..Default::default()
        };
        let mut svc = StagingService::new(seeded_catalog(hub, 3, 100_000), cfg, 1);
        svc.stage(&topo, &rt, SimTime::ZERO, DataKey(0), spokes[0])
            .unwrap();
        assert_eq!(svc.catalog.replicas(DataKey(0)).len(), 2);
        // Key 1 evicts key 0 (capacity 150 KB, objects 100 KB).
        svc.stage(&topo, &rt, SimTime::ZERO, DataKey(1), spokes[0])
            .unwrap();
        assert_eq!(svc.catalog.replicas(DataKey(0)).len(), 1);
        assert_eq!(svc.catalog.replicas(DataKey(0))[0].node, hub);
    }

    #[test]
    fn zipf_workload_cache_reduces_bytes() {
        let (topo, rt, hub, spokes) = world();
        let n_keys = 50u64;
        let accesses = 400;
        let run = |cache_bytes: u64| -> u64 {
            let cfg = StagingConfig {
                cache_bytes,
                replicate: false,
                ..Default::default()
            };
            let mut svc = StagingService::new(seeded_catalog(hub, n_keys, 10_000), cfg, 9);
            let mut rng = continuum_sim::Rng::new(42);
            for i in 0..accesses {
                let k = rng.zipf(n_keys as usize, 1.2) as u64;
                let dst = spokes[i % spokes.len()];
                svc.stage(&topo, &rt, SimTime::ZERO, DataKey(k), dst)
                    .unwrap();
            }
            svc.bytes_on_wire()
        };
        let without = run(0);
        let with = run(1 << 20);
        assert!(
            (with as f64) < 0.5 * without as f64,
            "cache ineffective: {with} vs {without}"
        );
    }
}

#[cfg(test)]
mod pin_prefetch_tests {
    use super::*;
    use continuum_net::{LinkSpec, RouteTable, Topology};
    use continuum_sim::SimDuration;

    fn world() -> (
        Topology,
        RouteTable,
        continuum_net::NodeId,
        Vec<continuum_net::NodeId>,
    ) {
        let (topo, hub, spokes) =
            continuum_net::star(3, LinkSpec::new(SimDuration::from_millis(10), 1e6));
        let rt = RouteTable::build(&topo);
        (topo, rt, hub, spokes)
    }

    #[test]
    fn pinned_object_survives_eviction_pressure() {
        let (topo, rt, hub, spokes) = world();
        let mut cat = ReplicaCatalog::new();
        for k in 0..10u64 {
            cat.register(DataKey(k), hub, 60_000);
        }
        let cfg = StagingConfig {
            cache_bytes: 150_000,
            replicate: false,
            ..Default::default()
        };
        let mut svc = StagingService::new(cat, cfg, 1);
        svc.stage_pinned(&topo, &rt, SimTime::ZERO, DataKey(0), spokes[0])
            .unwrap();
        // Churn through every other object repeatedly.
        for round in 0..3 {
            for k in 1..10u64 {
                let _ = round;
                svc.stage(&topo, &rt, SimTime::ZERO, DataKey(k), spokes[0])
                    .unwrap();
            }
        }
        // The pinned object is still a local hit.
        let out = svc
            .stage(&topo, &rt, SimTime::ZERO, DataKey(0), spokes[0])
            .unwrap();
        assert!(out.hit, "pinned object was evicted");
        assert!(svc.unpin(spokes[0], DataKey(0)));
    }

    #[test]
    fn prefetch_warms_without_counting() {
        let (topo, rt, hub, spokes) = world();
        let mut cat = ReplicaCatalog::new();
        for k in 0..5u64 {
            cat.register(DataKey(k), hub, 10_000);
        }
        let mut svc = StagingService::new(cat, StagingConfig::default(), 1);
        let keys: Vec<DataKey> = (0..5).map(DataKey).collect();
        let ready = svc
            .prefetch(&topo, &rt, SimTime::ZERO, &keys, spokes[1])
            .unwrap();
        assert!(ready > SimTime::ZERO);
        // Statistics untouched by the prefetch...
        assert_eq!(svc.requests, 0);
        // ...but demand requests now hit.
        for &k in &keys {
            let out = svc.stage(&topo, &rt, ready, k, spokes[1]).unwrap();
            assert!(out.hit);
        }
        assert!((svc.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_refuses_when_pins_fill_it() {
        let mut c = crate::cache::SiteCache::new(100);
        c.put(DataKey(1), 60);
        c.pin(DataKey(1));
        c.put(DataKey(2), 30);
        c.pin(DataKey(2));
        // 90 pinned bytes; a 40-byte object cannot fit without evicting
        // pinned entries -> refused (entry 2 unpinned? no, both pinned).
        let evicted = c.put(DataKey(3), 40);
        assert!(evicted.is_empty());
        assert!(!c.contains(DataKey(3)));
        assert_eq!(c.pinned_bytes(), 90);
        // Unpin frees it for eviction again.
        c.unpin(DataKey(1));
        let evicted = c.put(DataKey(3), 40);
        assert_eq!(evicted, vec![DataKey(1)]);
        assert!(c.contains(DataKey(3)));
    }
}
