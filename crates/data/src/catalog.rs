//! Replica catalog: which nodes hold which data, and how big it is.

use continuum_net::{NodeId, RouteTable, Topology};
use continuum_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Key identifying a logical data object across the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataKey(pub u64);

impl fmt::Display for DataKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// The expected checksum of a data object — a pure function of the key, so
/// any party can verify a transfer without a side channel.
pub fn expected_checksum(key: DataKey) -> u64 {
    // SplitMix64 finalizer over the key.
    let mut z = key.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One physical copy of a data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Replica {
    /// Node holding the copy.
    pub node: NodeId,
    /// Object size in bytes.
    pub bytes: u64,
}

/// The catalog of all registered replicas.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    replicas: HashMap<DataKey, Vec<Replica>>,
}

impl ReplicaCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        ReplicaCatalog::default()
    }

    /// Register a replica. Duplicate (key, node) registrations are ignored.
    pub fn register(&mut self, key: DataKey, node: NodeId, bytes: u64) {
        let list = self.replicas.entry(key).or_default();
        if !list.iter().any(|r| r.node == node) {
            list.push(Replica { node, bytes });
        }
    }

    /// Remove a replica (e.g. after cache eviction). Returns `true` if it
    /// existed.
    pub fn unregister(&mut self, key: DataKey, node: NodeId) -> bool {
        if let Some(list) = self.replicas.get_mut(&key) {
            let before = list.len();
            list.retain(|r| r.node != node);
            return list.len() != before;
        }
        false
    }

    /// All replicas of a key.
    pub fn replicas(&self, key: DataKey) -> &[Replica] {
        self.replicas.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica whose analytic transfer to `dst` is cheapest.
    ///
    /// Returns `(replica, transfer_time)`; `None` if the key has no replica
    /// or none is reachable. A replica already at `dst` costs zero.
    pub fn best_replica(
        &self,
        topo: &Topology,
        routes: &RouteTable,
        key: DataKey,
        dst: NodeId,
    ) -> Option<(Replica, SimDuration)> {
        self.replicas(key)
            .iter()
            .filter_map(|r| {
                let path = routes.path(topo, r.node, dst)?;
                Some((*r, path.transfer_time(r.bytes)))
            })
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.node.cmp(&b.0.node)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_net::{LinkSpec, Tier};

    fn line() -> (Topology, RouteTable, Vec<NodeId>) {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        let l = LinkSpec::new(SimDuration::from_millis(5), 1e6);
        t.add_link(a, b, l.latency, l.bandwidth_bps);
        t.add_link(b, c, l.latency, l.bandwidth_bps);
        let rt = RouteTable::build(&t);
        (t, rt, vec![a, b, c])
    }

    #[test]
    fn register_dedupes() {
        let (_, _, n) = line();
        let mut cat = ReplicaCatalog::new();
        cat.register(DataKey(1), n[0], 100);
        cat.register(DataKey(1), n[0], 100);
        assert_eq!(cat.replicas(DataKey(1)).len(), 1);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn best_replica_prefers_near() {
        let (t, rt, n) = line();
        let mut cat = ReplicaCatalog::new();
        cat.register(DataKey(7), n[0], 1_000_000); // two hops from c
        cat.register(DataKey(7), n[1], 1_000_000); // one hop from c
        let (best, time) = cat.best_replica(&t, &rt, DataKey(7), n[2]).unwrap();
        assert_eq!(best.node, n[1]);
        assert!(time > SimDuration::ZERO);
    }

    #[test]
    fn local_replica_costs_zero() {
        let (t, rt, n) = line();
        let mut cat = ReplicaCatalog::new();
        cat.register(DataKey(7), n[2], 1_000_000);
        cat.register(DataKey(7), n[0], 1_000_000);
        let (best, time) = cat.best_replica(&t, &rt, DataKey(7), n[2]).unwrap();
        assert_eq!(best.node, n[2]);
        assert_eq!(time, SimDuration::ZERO);
    }

    #[test]
    fn unregister_removes() {
        let (_, _, n) = line();
        let mut cat = ReplicaCatalog::new();
        cat.register(DataKey(1), n[0], 10);
        assert!(cat.unregister(DataKey(1), n[0]));
        assert!(!cat.unregister(DataKey(1), n[0]));
        assert!(cat.replicas(DataKey(1)).is_empty());
    }

    #[test]
    fn missing_key_no_replica() {
        let (t, rt, n) = line();
        let cat = ReplicaCatalog::new();
        assert!(cat.best_replica(&t, &rt, DataKey(9), n[0]).is_none());
    }

    #[test]
    fn checksum_stable_and_distinct() {
        assert_eq!(expected_checksum(DataKey(1)), expected_checksum(DataKey(1)));
        assert_ne!(expected_checksum(DataKey(1)), expected_checksum(DataKey(2)));
    }
}
