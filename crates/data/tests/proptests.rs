//! Property-based tests for the data fabric.

use continuum_data::{DataKey, ReplicaCatalog, SiteCache, StagingConfig, StagingService};
use continuum_net::{LinkSpec, RouteTable};
use continuum_sim::{Rng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Under arbitrary get/put/pin/unpin sequences the cache never exceeds
    /// capacity, never evicts a pinned entry, and its byte accounting is
    /// exact.
    #[test]
    fn cache_invariants(
        capacity in 1u64..10_000,
        ops in proptest::collection::vec((0u8..4, 0u64..50, 1u64..4_000), 1..200),
    ) {
        let mut cache = SiteCache::new(capacity);
        let mut pinned: std::collections::HashSet<DataKey> = Default::default();
        for &(op, key, bytes) in &ops {
            let key = DataKey(key);
            match op {
                0 => {
                    let evicted = cache.put(key, bytes);
                    for e in &evicted {
                        prop_assert!(!pinned.contains(e), "pinned entry {e} evicted");
                    }
                }
                1 => {
                    let _ = cache.get(key);
                }
                2 => {
                    if cache.pin(key) {
                        pinned.insert(key);
                    }
                }
                _ => {
                    if cache.unpin(key) {
                        pinned.remove(&key);
                    }
                }
            }
            prop_assert!(cache.used_bytes() <= capacity,
                "over capacity: {} > {capacity}", cache.used_bytes());
            prop_assert!(cache.pinned_bytes() <= cache.used_bytes());
        }
        // Pinned set consistent: every tracked pin still cached.
        for k in &pinned {
            prop_assert!(cache.contains(*k), "pinned {k} vanished");
        }
    }

    /// Staging always produces a usable object no earlier than requested,
    /// hit-rate stays in [0,1], and bytes-on-wire only grows.
    #[test]
    fn staging_monotone_accounting(
        seed in any::<u64>(),
        accesses in 1usize..120,
        cache_kb in 0u64..512,
    ) {
        let (topo, hub, spokes) =
            continuum_net::star(4, LinkSpec::new(SimDuration::from_millis(5), 1e6));
        let routes = RouteTable::build(&topo);
        let mut catalog = ReplicaCatalog::new();
        for k in 0..20u64 {
            catalog.register(DataKey(k), hub, 10_000);
        }
        let cfg = StagingConfig { cache_bytes: cache_kb << 10, ..Default::default() };
        let mut svc = StagingService::new(catalog, cfg, seed);
        let mut rng = Rng::new(seed);
        let mut last_wire = 0;
        let mut now = SimTime::ZERO;
        for i in 0..accesses {
            let key = DataKey(rng.below(20));
            let dst = spokes[i % spokes.len()];
            let out = svc.stage(&topo, &routes, now, key, dst).expect("reachable");
            prop_assert!(out.ready_at >= now);
            prop_assert!(out.hit == (out.source.is_none()));
            prop_assert!(svc.bytes_on_wire() >= last_wire);
            last_wire = svc.bytes_on_wire();
            let rate = svc.hit_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
            now = out.ready_at;
        }
        prop_assert_eq!(svc.requests, accesses as u64);
    }

    /// With corruption injected, every successful transfer still verifies,
    /// and the retry count matches attempts beyond the first.
    #[test]
    fn integrity_retries_accounted(seed in any::<u64>(), p in 0.0f64..0.6) {
        use continuum_data::TransferManager;
        let (topo, hub, spokes) =
            continuum_net::star(2, LinkSpec::new(SimDuration::from_millis(1), 1e6));
        let routes = RouteTable::build(&topo);
        let mut tm = TransferManager::new(seed, p, 50);
        let mut total_attempts = 0u64;
        let mut completed = 0u64;
        for k in 0..30u64 {
            if let Ok(rec) =
                tm.transfer(&topo, &routes, SimTime::ZERO, DataKey(k), hub, spokes[0], 500)
            {
                total_attempts += rec.attempts as u64;
                completed += 1;
                prop_assert!(rec.attempts >= 1);
                prop_assert!(rec.completed_at > SimTime::ZERO);
            }
        }
        prop_assert_eq!(tm.completed, completed);
        prop_assert_eq!(tm.retries, total_attempts - completed);
    }
}
