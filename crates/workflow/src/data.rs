//! Data items flowing through a workflow.
//!
//! Every dependency in a workflow DAG is carried by a named data item: a
//! task consumes the items its predecessors produce. External inputs
//! (sensor frames, instrument files) have a *home* node where they are
//! born; intermediate items live wherever their producer ran.

use continuum_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a data item within a [`crate::dag::Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataId(pub u32);

impl fmt::Display for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A unit of data produced and consumed by tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataItem {
    /// This item's index.
    pub id: DataId,
    /// Human-readable name.
    pub name: String,
    /// Size in bytes (drives transfer costs).
    pub bytes: u64,
    /// For external inputs: the node where the item initially exists.
    /// `None` for intermediate items (they appear where their producer ran).
    pub home: Option<NodeId>,
}

impl DataItem {
    /// True if this item pre-exists the workflow (has a home and no
    /// producer task — the DAG validates the latter).
    pub fn is_external(&self) -> bool {
        self.home.is_some()
    }
}
