//! Workflow DAGs: tasks linked by the data items they exchange.
//!
//! Dependencies are *data-driven*: task `B` depends on task `A` iff `B`
//! consumes an item `A` produces. The builder enforces single-producer
//! items; [`Dag::validate`] checks acyclicity and referential integrity and
//! is run by every generator and test.

use crate::data::{DataId, DataItem};
use crate::task::{Constraints, Task, TaskId};
use continuum_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A complete workflow: tasks, data items, and the derived dependency graph.
///
/// ```
/// use continuum_net::NodeId;
/// use continuum_workflow::Dag;
///
/// // in --(decode)--> frames --(detect)--> labels
/// let mut g = Dag::new("detect");
/// let input = g.add_input("in", 10 << 20, NodeId(0)); // born at node 0
/// let frames = g.add_item("frames", 8 << 20);
/// let labels = g.add_item("labels", 4 << 10);
/// let decode = g.add_task("decode", 1e9, vec![input], vec![frames]);
/// let detect = g.add_task("detect", 2e10, vec![frames], vec![labels]);
///
/// assert!(g.validate().is_ok());
/// assert_eq!(g.preds(detect), &[decode]);
/// assert_eq!(g.topo_order(), vec![decode, detect]);
/// assert_eq!(g.critical_path_work(), 2.1e10);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dag {
    /// Workflow name (for reports).
    pub name: String,
    tasks: Vec<Task>,
    data: Vec<DataItem>,
    /// Producer task of each data item (None for external inputs).
    producer: Vec<Option<TaskId>>,
    /// Task-level adjacency, derived, deduplicated.
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
}

/// Errors detected by [`Dag::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A data item is produced by more than one task.
    MultipleProducers(DataId),
    /// A consumed data item has neither a producer nor a home node.
    OrphanInput(TaskId, DataId),
    /// The dependency graph contains a cycle.
    Cycle,
    /// A task references an out-of-range data id.
    BadDataRef(TaskId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::MultipleProducers(d) => write!(f, "data item {d} has multiple producers"),
            DagError::OrphanInput(t, d) => {
                write!(f, "task {t} consumes {d} which has no producer and no home")
            }
            DagError::Cycle => write!(f, "dependency graph contains a cycle"),
            DagError::BadDataRef(t) => write!(f, "task {t} references out-of-range data id"),
        }
    }
}

impl std::error::Error for DagError {}

impl Dag {
    /// Empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Dag {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add an external input item born at `home`.
    pub fn add_input(&mut self, name: impl Into<String>, bytes: u64, home: NodeId) -> DataId {
        self.push_data(name, bytes, Some(home))
    }

    /// Add an intermediate/output item (produced by some task).
    pub fn add_item(&mut self, name: impl Into<String>, bytes: u64) -> DataId {
        self.push_data(name, bytes, None)
    }

    fn push_data(&mut self, name: impl Into<String>, bytes: u64, home: Option<NodeId>) -> DataId {
        let id = DataId(self.data.len() as u32);
        self.data.push(DataItem {
            id,
            name: name.into(),
            bytes,
            home,
        });
        self.producer.push(None);
        id
    }

    /// Add a task. Returns its id.
    ///
    /// # Panics
    /// If an output item already has a producer (single-assignment).
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        work_flops: f64,
        inputs: Vec<DataId>,
        outputs: Vec<DataId>,
    ) -> TaskId {
        self.add_task_full(name, work_flops, 1, inputs, outputs, Constraints::none())
    }

    /// Add a task with explicit parallelism and constraints.
    pub fn add_task_full(
        &mut self,
        name: impl Into<String>,
        work_flops: f64,
        parallelism: u32,
        inputs: Vec<DataId>,
        outputs: Vec<DataId>,
        constraints: Constraints,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        for &o in &outputs {
            let slot = &mut self.producer[o.0 as usize];
            assert!(slot.is_none(), "data item {o} already has a producer");
            *slot = Some(id);
        }
        self.tasks.push(Task {
            id,
            name: name.into(),
            work_flops,
            parallelism: parallelism.max(1),
            inputs,
            outputs,
            constraints,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.rebuild_edges_for(id);
        id
    }

    /// Recompute the dedup'd task adjacency contributed by task `t`'s inputs.
    fn rebuild_edges_for(&mut self, t: TaskId) {
        let mut ps: Vec<TaskId> = self.tasks[t.0 as usize]
            .inputs
            .iter()
            .filter_map(|d| self.producer[d.0 as usize])
            .collect();
        ps.sort_unstable();
        ps.dedup();
        for &p in &ps {
            self.succs[p.0 as usize].push(t);
        }
        self.preds[t.0 as usize] = ps;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the workflow has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Data item by id.
    pub fn data(&self, id: DataId) -> &DataItem {
        &self.data[id.0 as usize]
    }

    /// All data items.
    pub fn data_items(&self) -> &[DataItem] {
        &self.data
    }

    /// Producer task of a data item (`None` for external inputs).
    pub fn producer(&self, id: DataId) -> Option<TaskId> {
        self.producer[id.0 as usize]
    }

    /// Direct predecessors of a task (dedup'd).
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.0 as usize]
    }

    /// Direct successors of a task (dedup'd per input edge contribution).
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.0 as usize]
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| self.preds(t.id).is_empty())
            .map(|t| t.id)
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| self.succs(t.id).is_empty())
            .map(|t| t.id)
            .collect()
    }

    /// Total work across all tasks, flops.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work_flops).sum()
    }

    /// Total bytes across all data items.
    pub fn total_bytes(&self) -> u64 {
        self.data.iter().map(|d| d.bytes).sum()
    }

    /// Absorb `other` as a disjoint sub-workflow (multi-tenant batches run
    /// as one simulation). Returns the (task, data) id offsets: a task
    /// `t` of `other` becomes `TaskId(t.0 + task_off)` here, and likewise
    /// for data ids.
    pub fn absorb(&mut self, other: &Dag) -> (u32, u32) {
        let task_off = self.tasks.len() as u32;
        let data_off = self.data.len() as u32;
        for item in &other.data {
            self.push_data(item.name.clone(), item.bytes, item.home);
        }
        for task in &other.tasks {
            let inputs = task.inputs.iter().map(|d| DataId(d.0 + data_off)).collect();
            let outputs = task
                .outputs
                .iter()
                .map(|d| DataId(d.0 + data_off))
                .collect();
            self.add_task_full(
                task.name.clone(),
                task.work_flops,
                task.parallelism,
                inputs,
                outputs,
                task.constraints.clone(),
            );
        }
        (task_off, data_off)
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<(), DagError> {
        for t in &self.tasks {
            for &d in t.inputs.iter().chain(&t.outputs) {
                if d.0 as usize >= self.data.len() {
                    return Err(DagError::BadDataRef(t.id));
                }
            }
            for &d in &t.inputs {
                if self.producer[d.0 as usize].is_none() && self.data[d.0 as usize].home.is_none() {
                    return Err(DagError::OrphanInput(t.id, d));
                }
            }
        }
        // Kahn's algorithm detects cycles.
        if self.topo_order().len() != self.tasks.len() {
            return Err(DagError::Cycle);
        }
        Ok(())
    }

    /// Topological order (Kahn, deterministic: FIFO by task id). If the
    /// graph has a cycle the returned order is shorter than `len()`.
    pub fn topo_order(&self) -> Vec<TaskId> {
        let n = self.tasks.len();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.preds[i].len() as u32).collect();
        let mut queue: VecDeque<TaskId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| TaskId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for &s in self.succs(t) {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Length of the longest chain, in tasks (0 for an empty DAG).
    pub fn depth(&self) -> usize {
        let order = self.topo_order();
        let mut depth = vec![0usize; self.tasks.len()];
        let mut max = 0;
        for &t in &order {
            let d = self
                .preds(t)
                .iter()
                .map(|p| depth[p.0 as usize])
                .max()
                .unwrap_or(0)
                + 1;
            depth[t.0 as usize] = d;
            max = max.max(d);
        }
        max
    }

    /// Critical-path work: the heaviest root-to-sink chain, flops.
    pub fn critical_path_work(&self) -> f64 {
        let order = self.topo_order();
        let mut best = vec![0.0f64; self.tasks.len()];
        let mut max = 0.0f64;
        for &t in &order {
            let up: f64 = self
                .preds(t)
                .iter()
                .map(|p| best[p.0 as usize])
                .fold(0.0, f64::max);
            let v = up + self.task(t).work_flops;
            best[t.0 as usize] = v;
            max = max.max(v);
        }
        max
    }

    /// Bytes entering each task: sum of its input item sizes.
    pub fn input_bytes(&self, t: TaskId) -> u64 {
        self.task(t)
            .inputs
            .iter()
            .map(|&d| self.data(d).bytes)
            .sum()
    }

    /// Upward ranks for HEFT-family schedulers, computed against *average*
    /// compute speed `mean_flops` (flop/s per core) and *average* bandwidth
    /// `mean_bps` (bytes/s): `rank(t) = w(t) + max over succs (c(t,s) +
    /// rank(s))` where `w` is mean execution time and `c` mean transfer
    /// time of the items the successor consumes from `t`.
    pub fn upward_ranks(&self, mean_flops: f64, mean_bps: f64) -> Vec<f64> {
        assert!(mean_flops > 0.0 && mean_bps > 0.0);
        let order = self.topo_order();
        let mut rank = vec![0.0f64; self.tasks.len()];
        for &t in order.iter().rev() {
            let w = self.task(t).work_flops / mean_flops;
            let mut best = 0.0f64;
            for &s in self.succs(t) {
                // Bytes s consumes from items t produces.
                let bytes: u64 = self
                    .task(s)
                    .inputs
                    .iter()
                    .filter(|&&d| self.producer(d) == Some(t))
                    .map(|&d| self.data(d).bytes)
                    .sum();
                let c = bytes as f64 / mean_bps;
                best = best.max(c + rank[s.0 as usize]);
            }
            rank[t.0 as usize] = w + best;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_net::NodeId;

    /// in -> a -> x -> b -> y -> c (chain), plus a -> z -> c (diamond-ish).
    fn diamond() -> Dag {
        let mut g = Dag::new("diamond");
        let input = g.add_input("in", 100, NodeId(0));
        let x = g.add_item("x", 50);
        let z = g.add_item("z", 10);
        let y = g.add_item("y", 25);
        let out = g.add_item("out", 5);
        g.add_task("a", 10.0, vec![input], vec![x, z]);
        g.add_task("b", 20.0, vec![x], vec![y]);
        g.add_task("c", 30.0, vec![y, z], vec![out]);
        g
    }

    #[test]
    fn structure_queries() {
        let g = diamond();
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 3);
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(2)]);
        assert_eq!(g.preds(TaskId(2)), &[TaskId(0), TaskId(1)]);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.total_work(), 60.0);
        assert_eq!(g.total_bytes(), 190);
        assert_eq!(g.input_bytes(TaskId(2)), 35);
    }

    #[test]
    fn topo_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        assert_eq!(order.len(), 3);
        let pos: Vec<usize> = (0..3)
            .map(|i| order.iter().position(|t| t.0 == i as u32).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[2]);
    }

    #[test]
    fn critical_path() {
        let g = diamond();
        // a(10) -> b(20) -> c(30) = 60.
        assert_eq!(g.critical_path_work(), 60.0);
    }

    #[test]
    fn orphan_input_detected() {
        let mut g = Dag::new("bad");
        let orphan = g.add_item("orphan", 1); // no home, no producer
        g.add_task("t", 1.0, vec![orphan], vec![]);
        assert_eq!(g.validate(), Err(DagError::OrphanInput(TaskId(0), orphan)));
    }

    #[test]
    #[should_panic(expected = "already has a producer")]
    fn double_producer_panics() {
        let mut g = Dag::new("bad");
        let x = g.add_item("x", 1);
        g.add_task("a", 1.0, vec![], vec![x]);
        g.add_task("b", 1.0, vec![], vec![x]);
    }

    #[test]
    fn absorb_disjoint_union() {
        let mut a = diamond();
        let b = diamond();
        let (task_off, data_off) = a.absorb(&b);
        assert_eq!(task_off, 3);
        assert_eq!(data_off, 5);
        assert_eq!(a.len(), 6);
        assert!(a.validate().is_ok());
        assert_eq!(a.total_work(), 120.0);
        assert_eq!(a.total_bytes(), 380);
        // The two halves are independent: sources/sinks double.
        assert_eq!(a.sources().len(), 2);
        assert_eq!(a.sinks().len(), 2);
        // Translated dependencies hold inside the absorbed half.
        assert_eq!(
            a.preds(TaskId(2 + task_off)),
            &[TaskId(task_off), TaskId(1 + task_off)]
        );
        // No cross-half edges.
        for t in 0..3u32 {
            for p in a.preds(TaskId(t + task_off)) {
                assert!(p.0 >= task_off);
            }
        }
    }

    #[test]
    fn upward_ranks_decrease_downstream() {
        let g = diamond();
        let r = g.upward_ranks(1.0, 1.0);
        // rank(a) > rank(b) > rank(c) since a is upstream of everything.
        assert!(r[0] > r[1]);
        assert!(r[1] > r[2]);
        // Sink's rank equals its own mean execution time.
        assert_eq!(r[2], 30.0);
    }

    #[test]
    fn duplicate_edges_dedup() {
        let mut g = Dag::new("dup");
        let a_out1 = g.add_item("o1", 1);
        let a_out2 = g.add_item("o2", 1);
        g.add_task("a", 1.0, vec![], vec![a_out1, a_out2]);
        g.add_task("b", 1.0, vec![a_out1, a_out2], vec![]);
        assert_eq!(g.preds(TaskId(1)).len(), 1);
        assert_eq!(g.succs(TaskId(0)).len(), 1);
    }
}
