//! # continuum-workflow
//!
//! Application substrate for the `coding-the-continuum` reproduction:
//! tasks, data items, workflow DAGs, and the synthetic workload generators
//! that stand in for production traces.
//!
//! A workflow is data-driven: tasks exchange named [`DataItem`]s, and the
//! dependency graph is derived from who produces what. External inputs are
//! born at a topology node (their *home*), which is what ties workloads to
//! the continuum and makes "where should I compute?" a non-trivial
//! question.

#![warn(missing_docs)]

pub mod dag;
pub mod data;
pub mod generators;
pub mod task;

pub use dag::{Dag, DagError};
pub use data::{DataId, DataItem};
pub use generators::{
    analytics_pipeline, broadcast_reduce, fork_join, inference_stream, layered_random, map_reduce,
    montage_like, open_loop_arrivals, open_loop_stream, stencil, ArrivalProcess, LayeredSpec,
    OpenLoopArrivals, OpenLoopSpec, PipelineSpec, StreamSpec, StreamWorkload,
};
pub use task::{Constraints, Task, TaskId};
