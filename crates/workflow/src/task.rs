//! Tasks: the units of placement and execution.

use crate::data::DataId;
use continuum_net::{NodeId, Tier};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task within a [`crate::dag::Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Placement constraints a task may carry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Constraints {
    /// Must run on a device attached to exactly this node (e.g. a capture
    /// task bound to its sensor).
    pub pinned_node: Option<NodeId>,
    /// Only devices whose tier lies in `[min, max]` qualify.
    pub tier_range: Option<(Tier, Tier)>,
    /// Minimum device memory, bytes.
    pub min_mem_bytes: u64,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Constraints::default()
    }

    /// Pin to a node.
    pub fn pinned(node: NodeId) -> Self {
        Constraints {
            pinned_node: Some(node),
            ..Default::default()
        }
    }

    /// Restrict to a tier range.
    pub fn tiers(min: Tier, max: Tier) -> Self {
        Constraints {
            tier_range: Some((min, max)),
            ..Default::default()
        }
    }
}

/// A schedulable unit of work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// This task's index.
    pub id: TaskId,
    /// Human-readable name.
    pub name: String,
    /// Work in floating-point operations.
    pub work_flops: f64,
    /// Cores this task can use concurrently (≥ 1); clamped to the device.
    pub parallelism: u32,
    /// Data items consumed.
    pub inputs: Vec<DataId>,
    /// Data items produced (each item has exactly one producer).
    pub outputs: Vec<DataId>,
    /// Placement constraints.
    pub constraints: Constraints,
}

impl Task {
    /// Cores the task will occupy on a device with `device_cores` cores.
    pub fn occupancy(&self, device_cores: u32) -> u32 {
        self.parallelism.clamp(1, device_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_clamped() {
        let t = Task {
            id: TaskId(0),
            name: "t".into(),
            work_flops: 1.0,
            parallelism: 8,
            inputs: vec![],
            outputs: vec![],
            constraints: Constraints::none(),
        };
        assert_eq!(t.occupancy(4), 4);
        assert_eq!(t.occupancy(16), 8);
        let t0 = Task {
            parallelism: 0,
            ..t
        };
        assert_eq!(t0.occupancy(4), 1);
    }
}
