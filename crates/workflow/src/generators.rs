//! Synthetic workload generators.
//!
//! These stand in for the production traces the keynote's experiments would
//! use (per the substitution rule in DESIGN.md). Each generator produces a
//! validated [`Dag`]; stochastic ones take an explicit [`Rng`] so workloads
//! are reproducible from a seed.

use crate::dag::Dag;
use crate::task::Constraints;
use continuum_net::NodeId;
use continuum_sim::{Rng, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the edge-analytics pipeline (experiment F1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Node where the raw input is born (the capture point).
    pub source: NodeId,
    /// Raw input size, bytes.
    pub input_bytes: u64,
    /// Number of processing stages after capture.
    pub stages: usize,
    /// Compute intensity: flops of work per input byte at each stage.
    pub work_per_byte: f64,
    /// Data reduction per stage: stage output = input × `reduction`.
    pub reduction: f64,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            source: NodeId(0),
            input_bytes: 10 << 20,
            stages: 4,
            // DNN-ish intensity: ~2 kflop per byte of frame.
            work_per_byte: 2_000.0,
            reduction: 0.1,
        }
    }
}

/// Linear analytics pipeline: `capture -> s0 -> s1 -> ... -> sink`.
///
/// Capture is pinned to the source node (data is born there); every later
/// stage is free to run anywhere. Per-stage work scales with the bytes the
/// stage ingests, so compute intensity stays constant while data shrinks
/// down the pipeline — the shape that creates the edge/cloud crossover.
pub fn analytics_pipeline(spec: &PipelineSpec) -> Dag {
    let mut g = Dag::new("analytics-pipeline");
    let raw = g.add_input("raw", spec.input_bytes, spec.source);
    // Capture: negligible work, must run at the source.
    let captured = g.add_item("captured", spec.input_bytes);
    g.add_task_full(
        "capture",
        1e6,
        1,
        vec![raw],
        vec![captured],
        Constraints::pinned(spec.source),
    );
    let mut prev = captured;
    let mut bytes = spec.input_bytes;
    for i in 0..spec.stages {
        let work = spec.work_per_byte * bytes as f64;
        let out_bytes = ((bytes as f64 * spec.reduction) as u64).max(1);
        let out = g.add_item(format!("stage{i}_out"), out_bytes);
        g.add_task(format!("stage{i}"), work, vec![prev], vec![out]);
        prev = out;
        bytes = out_bytes;
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Fork-join: `scatter -> {branch_i} -> gather`.
///
/// `branch_work` flops and `branch_bytes` bytes per branch.
pub fn fork_join(
    source: NodeId,
    width: usize,
    input_bytes: u64,
    branch_work: f64,
    branch_bytes: u64,
) -> Dag {
    assert!(width >= 1);
    let mut g = Dag::new("fork-join");
    let input = g.add_input("in", input_bytes, source);
    let mut branch_outs = Vec::with_capacity(width);
    let shards: Vec<_> = (0..width)
        .map(|i| g.add_item(format!("shard{i}"), (input_bytes / width as u64).max(1)))
        .collect();
    g.add_task("scatter", 1e6, vec![input], shards.clone());
    for (i, &shard) in shards.iter().enumerate() {
        let out = g.add_item(format!("branch{i}_out"), branch_bytes);
        g.add_task(format!("branch{i}"), branch_work, vec![shard], vec![out]);
        branch_outs.push(out);
    }
    let result = g.add_item("result", branch_bytes);
    g.add_task("gather", 1e6, branch_outs, vec![result]);
    debug_assert!(g.validate().is_ok());
    g
}

/// Map-reduce: `m` mappers over shards of the input, all-to-all shuffle to
/// `r` reducers, single final merge.
pub fn map_reduce(
    source: NodeId,
    mappers: usize,
    reducers: usize,
    bytes_per_mapper: u64,
    work_per_byte: f64,
) -> Dag {
    assert!(mappers >= 1 && reducers >= 1);
    let mut g = Dag::new("map-reduce");
    let mut partitions: Vec<Vec<crate::data::DataId>> = vec![Vec::new(); reducers];
    for m in 0..mappers {
        let shard = g.add_input(format!("shard{m}"), bytes_per_mapper, source);
        let outs: Vec<_> = (0..reducers)
            .map(|r| {
                g.add_item(
                    format!("m{m}r{r}"),
                    (bytes_per_mapper / reducers as u64).max(1),
                )
            })
            .collect();
        g.add_task(
            format!("map{m}"),
            work_per_byte * bytes_per_mapper as f64,
            vec![shard],
            outs.clone(),
        );
        for (r, &o) in outs.iter().enumerate() {
            partitions[r].push(o);
        }
    }
    let mut reduce_outs = Vec::with_capacity(reducers);
    for (r, part) in partitions.into_iter().enumerate() {
        let in_bytes: u64 = part.iter().map(|&d| g.data(d).bytes).sum();
        let out = g.add_item(format!("reduce{r}_out"), (in_bytes / 10).max(1));
        g.add_task(
            format!("reduce{r}"),
            work_per_byte * in_bytes as f64,
            part,
            vec![out],
        );
        reduce_outs.push(out);
    }
    let final_out = g.add_item("final", 1024);
    g.add_task("merge", 1e6, reduce_outs, vec![final_out]);
    debug_assert!(g.validate().is_ok());
    g
}

/// Parameters for [`layered_random`] DAGs (experiment F3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayeredSpec {
    /// Total number of tasks.
    pub tasks: usize,
    /// Maximum tasks per layer (width).
    pub width: usize,
    /// Probability of an extra edge from a random earlier task.
    pub extra_edge_prob: f64,
    /// Log-normal μ of task work (ln flops).
    pub work_mu: f64,
    /// Log-normal σ of task work.
    pub work_sigma: f64,
    /// Log-normal μ of item sizes (ln bytes).
    pub bytes_mu: f64,
    /// Log-normal σ of item sizes.
    pub bytes_sigma: f64,
    /// Node where external inputs are born.
    pub source: NodeId,
    /// Memory floor per task, bytes — layered DAGs model server-class
    /// workloads, so by default they exclude MCU-class devices.
    pub min_mem_bytes: u64,
}

impl Default for LayeredSpec {
    fn default() -> Self {
        LayeredSpec {
            tasks: 100,
            width: 8,
            extra_edge_prob: 0.3,
            work_mu: (1e10f64).ln(), // ~10 Gflop median
            work_sigma: 1.0,
            bytes_mu: (1e6f64).ln(), // ~1 MB median
            bytes_sigma: 1.0,
            source: NodeId(0),
            min_mem_bytes: 1 << 30,
        }
    }
}

/// Random layered DAG: tasks are laid out in layers of random width; each
/// non-root task consumes one item from a random task in the previous
/// layer, plus extra items from random earlier tasks with probability
/// `extra_edge_prob` each.
pub fn layered_random(rng: &mut Rng, spec: &LayeredSpec) -> Dag {
    assert!(spec.tasks >= 1 && spec.width >= 1);
    let mut g = Dag::new("layered-random");
    // (task, its single output item)
    let mut all: Vec<(crate::task::TaskId, crate::data::DataId)> = Vec::new();
    let mut prev_layer: Vec<usize> = Vec::new(); // indices into `all`
    let mut made = 0usize;
    let mut layer_no = 0usize;
    while made < spec.tasks {
        let layer_size = (rng.range_u64(1, spec.width as u64) as usize).min(spec.tasks - made);
        let mut this_layer = Vec::with_capacity(layer_size);
        for i in 0..layer_size {
            let work = rng.lognormal(spec.work_mu, spec.work_sigma);
            let bytes = rng.lognormal(spec.bytes_mu, spec.bytes_sigma).max(1.0) as u64;
            let mut inputs = Vec::new();
            if prev_layer.is_empty() {
                let ext = g.add_input(
                    format!("ext{layer_no}_{i}"),
                    rng.lognormal(spec.bytes_mu, spec.bytes_sigma).max(1.0) as u64,
                    spec.source,
                );
                inputs.push(ext);
            } else {
                let parent = all[*rng.choose(&prev_layer)];
                inputs.push(parent.1);
                // Extra in-edges from anywhere earlier.
                while rng.chance(spec.extra_edge_prob) && all.len() > 1 {
                    let extra = all[rng.index(all.len())];
                    if !inputs.contains(&extra.1) {
                        inputs.push(extra.1);
                    } else {
                        break;
                    }
                }
            }
            let out = g.add_item(format!("d{layer_no}_{i}"), bytes);
            let t = g.add_task_full(
                format!("t{layer_no}_{i}"),
                work,
                1,
                inputs,
                vec![out],
                crate::task::Constraints {
                    min_mem_bytes: spec.min_mem_bytes,
                    ..Default::default()
                },
            );
            this_layer.push(all.len());
            all.push((t, out));
        }
        made += layer_size;
        prev_layer = this_layer;
        layer_no += 1;
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Montage-like astronomy mosaic (the classic workflow-scheduling shape):
/// `n` projections → background fits on overlapping pairs → one model →
/// `n` corrections → final co-add and shrink.
pub fn montage_like(source: NodeId, n_images: usize, image_bytes: u64) -> Dag {
    assert!(n_images >= 2);
    let mut g = Dag::new("montage-like");
    let per_image_work = 50.0 * image_bytes as f64; // ~50 flop/byte reprojection

    let mut projected = Vec::with_capacity(n_images);
    for i in 0..n_images {
        let raw = g.add_input(format!("raw{i}"), image_bytes, source);
        let p = g.add_item(format!("proj{i}"), image_bytes);
        g.add_task(format!("mProject{i}"), per_image_work, vec![raw], vec![p]);
        projected.push(p);
    }
    // Fits on adjacent pairs.
    let mut fits = Vec::with_capacity(n_images - 1);
    for i in 0..n_images - 1 {
        let f = g.add_item(format!("fit{i}"), (image_bytes / 100).max(1));
        g.add_task(
            format!("mDiffFit{i}"),
            10.0 * image_bytes as f64,
            vec![projected[i], projected[i + 1]],
            vec![f],
        );
        fits.push(f);
    }
    let model = g.add_item("model", 4096);
    g.add_task("mBgModel", 1e9, fits, vec![model]);
    let mut corrected = Vec::with_capacity(n_images);
    for (i, &p) in projected.iter().enumerate() {
        let c = g.add_item(format!("corr{i}"), image_bytes);
        g.add_task(
            format!("mBackground{i}"),
            5.0 * image_bytes as f64,
            vec![p, model],
            vec![c],
        );
        corrected.push(c);
    }
    let mosaic = g.add_item("mosaic", image_bytes * n_images as u64 / 2);
    let add = g.add_task_full(
        "mAdd",
        20.0 * (image_bytes * n_images as u64) as f64,
        4,
        corrected,
        vec![mosaic],
        Constraints::none(),
    );
    let _ = add;
    let jpeg = g.add_item("preview", (image_bytes / 50).max(1));
    g.add_task("mShrink", 1e9, vec![mosaic], vec![jpeg]);
    debug_assert!(g.validate().is_ok());
    g
}

/// Broadcast–compute–reduce: one root item (e.g. a model) consumed by all
/// `workers`, whose outputs are folded by a `fan_in`-ary reduction tree.
///
/// Exercises single-item/many-consumers transfer deduplication and deep
/// reduction dependencies.
pub fn broadcast_reduce(
    source: NodeId,
    workers: usize,
    fan_in: usize,
    model_bytes: u64,
    worker_work: f64,
    partial_bytes: u64,
) -> Dag {
    assert!(workers >= 1 && fan_in >= 2);
    let mut g = Dag::new("broadcast-reduce");
    let model = g.add_input("model", model_bytes, source);
    let mut level: Vec<crate::data::DataId> = (0..workers)
        .map(|i| {
            let out = g.add_item(format!("partial{i}"), partial_bytes);
            g.add_task(format!("worker{i}"), worker_work, vec![model], vec![out]);
            out
        })
        .collect();
    let mut depth = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(fan_in));
        for (j, chunk) in level.chunks(fan_in).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let out = g.add_item(format!("agg{depth}_{j}"), partial_bytes);
            g.add_task(
                format!("reduce{depth}_{j}"),
                1e8 * chunk.len() as f64,
                chunk.to_vec(),
                vec![out],
            );
            next.push(out);
        }
        level = next;
        depth += 1;
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Stencil/halo-exchange iterations: a `width`-wide row of tasks per
/// iteration, each consuming its own previous-state plus its neighbors'
/// halos — the communication pattern of iterative scientific codes.
pub fn stencil(
    source: NodeId,
    width: usize,
    iterations: usize,
    state_bytes: u64,
    halo_bytes: u64,
    work_per_iter: f64,
) -> Dag {
    assert!(width >= 2 && iterations >= 1);
    let mut g = Dag::new("stencil");
    // Iteration 0 state is external.
    let mut state: Vec<crate::data::DataId> = (0..width)
        .map(|i| g.add_input(format!("init{i}"), state_bytes, source))
        .collect();
    let mut halos: Vec<crate::data::DataId> = state.clone();
    for it in 0..iterations {
        let mut new_state = Vec::with_capacity(width);
        let mut new_halos = Vec::with_capacity(width);
        for i in 0..width {
            let mut inputs = vec![state[i]];
            if i > 0 {
                inputs.push(halos[i - 1]);
            }
            if i + 1 < width {
                inputs.push(halos[i + 1]);
            }
            let out_state = g.add_item(format!("s{it}_{i}"), state_bytes);
            let out_halo = g.add_item(format!("h{it}_{i}"), halo_bytes);
            g.add_task(
                format!("cell{it}_{i}"),
                work_per_iter,
                inputs,
                vec![out_state, out_halo],
            );
            new_state.push(out_state);
            new_halos.push(out_halo);
        }
        state = new_state;
        halos = new_halos;
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// A timed stream of small inference DAGs (experiment F4).
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    /// Arrival time and workflow instance for each request.
    pub requests: Vec<(SimTime, Dag)>,
}

/// Parameters for [`inference_stream`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Sensors producing frames (capture is pinned round-robin over these).
    pub sensors: Vec<NodeId>,
    /// Number of requests.
    pub requests: usize,
    /// Mean arrival rate, requests/second (Poisson arrivals).
    pub rate_hz: f64,
    /// Frame size, bytes.
    pub frame_bytes: u64,
    /// Inference work per frame, flops.
    pub infer_flops: f64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            sensors: vec![NodeId(0)],
            requests: 100,
            rate_hz: 2.0,
            frame_bytes: 200 << 10, // 200 KB compressed frame
            infer_flops: 2e9,       // small CNN
        }
    }
}

/// The `capture -> preprocess -> infer` request DAG shared by
/// [`inference_stream`] and the open-loop generators. `i` only names the
/// DAG (`req{i}`); structure and work depend on the size parameters alone.
fn inference_dag(i: usize, sensor: NodeId, frame_bytes: u64, infer_flops: f64) -> Dag {
    let mut g = Dag::new(format!("req{i}"));
    let frame = g.add_input("frame", frame_bytes, sensor);
    let cap = g.add_item("cap", frame_bytes);
    g.add_task_full(
        "capture",
        1e5,
        1,
        vec![frame],
        vec![cap],
        Constraints::pinned(sensor),
    );
    let pre = g.add_item("pre", frame_bytes / 2);
    g.add_task(
        "preprocess",
        100.0 * frame_bytes as f64,
        vec![cap],
        vec![pre],
    );
    let label = g.add_item("label", 256);
    g.add_task("infer", infer_flops, vec![pre], vec![label]);
    debug_assert!(g.validate().is_ok());
    g
}

/// Poisson-arriving `capture -> preprocess -> infer` requests.
pub fn inference_stream(rng: &mut Rng, spec: &StreamSpec) -> StreamWorkload {
    assert!(!spec.sensors.is_empty() && spec.rate_hz > 0.0);
    let mut requests = Vec::with_capacity(spec.requests);
    let mut t = 0.0f64;
    for i in 0..spec.requests {
        t += rng.exp(spec.rate_hz);
        let sensor = spec.sensors[i % spec.sensors.len()];
        let g = inference_dag(i, sensor, spec.frame_bytes, spec.infer_flops);
        requests.push((SimTime::from_secs_f64(t), g));
    }
    StreamWorkload { requests }
}

/// An arrival process for open-loop load: the instantaneous request rate
/// as a function of simulated time.
///
/// Non-homogeneous variants are sampled by Lewis–Shedler thinning against
/// the peak rate, so every process is deterministic per seed. (No serde:
/// the vendored shim does not derive for struct-variant enums.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate_hz: f64,
    },
    /// Sinusoidal day/night cycle: rate swings between `trough_hz` (at
    /// phase 0) and `peak_hz` (half a period later).
    Diurnal {
        /// Minimum rate, requests/second.
        trough_hz: f64,
        /// Maximum rate, requests/second.
        peak_hz: f64,
        /// Full cycle length, seconds.
        period_s: f64,
    },
    /// Steady Poisson baseline with a flash crowd: the rate jumps to
    /// `spike_hz` during `[at_s, at_s + len_s)`.
    FlashCrowd {
        /// Baseline rate, requests/second.
        base_hz: f64,
        /// Rate during the spike, requests/second.
        spike_hz: f64,
        /// Spike onset, seconds.
        at_s: f64,
        /// Spike duration, seconds.
        len_s: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate at time `t_s` (seconds), requests/second.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Diurnal {
                trough_hz,
                peak_hz,
                period_s,
            } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                trough_hz + (peak_hz - trough_hz) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::FlashCrowd {
                base_hz,
                spike_hz,
                at_s,
                len_s,
            } => {
                if t_s >= at_s && t_s < at_s + len_s {
                    spike_hz
                } else {
                    base_hz
                }
            }
        }
    }

    /// Upper bound on the instantaneous rate (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Diurnal {
                trough_hz, peak_hz, ..
            } => peak_hz.max(trough_hz),
            ArrivalProcess::FlashCrowd {
                base_hz, spike_hz, ..
            } => base_hz.max(spike_hz),
        }
    }

    /// Next arrival strictly after `t_s`, by Lewis–Shedler thinning.
    ///
    /// The homogeneous case short-circuits to a single exponential draw,
    /// so a `Poisson` process consumes exactly the rng sequence that
    /// [`inference_stream`] does at the same rate.
    pub fn next_after(&self, rng: &mut Rng, t_s: f64) -> f64 {
        let peak = self.peak_rate();
        assert!(peak > 0.0, "arrival process needs a positive rate");
        if let ArrivalProcess::Poisson { rate_hz } = *self {
            return t_s + rng.exp(rate_hz);
        }
        let mut t = t_s;
        loop {
            t += rng.exp(peak);
            if rng.f64() * peak <= self.rate_at(t) {
                return t;
            }
        }
    }
}

/// Parameters for [`open_loop_arrivals`]: sustained inference load under
/// an [`ArrivalProcess`], optionally with heavy-tailed request sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// Sensors producing frames (capture pinned round-robin over these).
    pub sensors: Vec<NodeId>,
    /// Number of requests to generate.
    pub requests: usize,
    /// The arrival process driving request times.
    pub process: ArrivalProcess,
    /// Baseline frame size, bytes.
    pub frame_bytes: u64,
    /// Baseline inference work per frame, flops.
    pub infer_flops: f64,
    /// Pareto tail index for per-request size scaling: each request's
    /// frame bytes and inference flops are multiplied by a
    /// `Pareto(1, alpha)` draw (capped at 1000x so a single tail draw
    /// cannot dominate a run). `None` keeps every request identical.
    pub size_alpha: Option<f64>,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        OpenLoopSpec {
            sensors: vec![NodeId(0)],
            requests: 1000,
            process: ArrivalProcess::Poisson { rate_hz: 10.0 },
            frame_bytes: 200 << 10,
            infer_flops: 2e9,
            size_alpha: None,
        }
    }
}

/// Lazy open-loop request source: yields `(arrival, dag)` pairs one at a
/// time so a million-request run never materialises its workload.
#[derive(Debug)]
pub struct OpenLoopArrivals {
    spec: OpenLoopSpec,
    rng: Rng,
    t_s: f64,
    next_index: usize,
}

impl Iterator for OpenLoopArrivals {
    type Item = (SimTime, Dag);

    fn next(&mut self) -> Option<(SimTime, Dag)> {
        if self.next_index >= self.spec.requests {
            return None;
        }
        let i = self.next_index;
        self.next_index += 1;
        self.t_s = self.spec.process.next_after(&mut self.rng, self.t_s);
        let scale = match self.spec.size_alpha {
            Some(alpha) => self.rng.pareto(1.0, alpha).min(1000.0),
            None => 1.0,
        };
        let sensor = self.spec.sensors[i % self.spec.sensors.len()];
        let frame_bytes = ((self.spec.frame_bytes as f64 * scale) as u64).max(1);
        let infer_flops = self.spec.infer_flops * scale;
        let g = inference_dag(i, sensor, frame_bytes, infer_flops);
        Some((SimTime::from_secs_f64(self.t_s), g))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.requests - self.next_index;
        (left, Some(left))
    }
}

/// Open-loop arrival stream, deterministic per `seed`.
pub fn open_loop_arrivals(seed: u64, spec: &OpenLoopSpec) -> OpenLoopArrivals {
    assert!(!spec.sensors.is_empty(), "open-loop spec needs sensors");
    assert!(spec.process.peak_rate() > 0.0, "needs a positive rate");
    if let Some(alpha) = spec.size_alpha {
        assert!(alpha > 0.0, "pareto tail index must be positive");
    }
    OpenLoopArrivals {
        spec: spec.clone(),
        rng: Rng::new(seed),
        t_s: 0.0,
        next_index: 0,
    }
}

/// Materialised [`open_loop_arrivals`], for closed-loop comparison runs
/// and the sharded executor (which needs the full request set to plan
/// shards).
pub fn open_loop_stream(seed: u64, spec: &OpenLoopSpec) -> StreamWorkload {
    StreamWorkload {
        requests: open_loop_arrivals(seed, spec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_shape() {
        let spec = PipelineSpec::default();
        let g = analytics_pipeline(&spec);
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 1 + spec.stages);
        assert_eq!(g.depth(), 1 + spec.stages);
        // Data shrinks stage over stage.
        let sizes: Vec<u64> = g.data_items().iter().map(|d| d.bytes).collect();
        assert!(sizes[2] < sizes[1]);
        // Capture pinned to the source.
        assert_eq!(
            g.task(crate::task::TaskId(0)).constraints.pinned_node,
            Some(spec.source)
        );
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(NodeId(0), 8, 1 << 20, 1e9, 1 << 10);
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 8 + 2);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn map_reduce_shape() {
        let g = map_reduce(NodeId(0), 4, 2, 1 << 20, 10.0);
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 4 + 2 + 1);
        // Each reducer depends on all mappers.
        let reducers: Vec<_> = g
            .tasks()
            .iter()
            .filter(|t| t.name.starts_with("reduce"))
            .collect();
        for r in reducers {
            assert_eq!(g.preds(r.id).len(), 4);
        }
    }

    #[test]
    fn layered_random_valid_and_deterministic() {
        let spec = LayeredSpec {
            tasks: 200,
            ..Default::default()
        };
        let mut r1 = Rng::new(7);
        let mut r2 = Rng::new(7);
        let g1 = layered_random(&mut r1, &spec);
        let g2 = layered_random(&mut r2, &spec);
        assert!(g1.validate().is_ok());
        assert_eq!(g1.len(), 200);
        assert_eq!(g2.len(), 200);
        // Determinism: identical structure and work.
        assert_eq!(g1.total_work(), g2.total_work());
        assert_eq!(g1.total_bytes(), g2.total_bytes());
        assert_eq!(g1.depth(), g2.depth());
    }

    #[test]
    fn layered_random_respects_width() {
        let spec = LayeredSpec {
            tasks: 50,
            width: 3,
            ..Default::default()
        };
        let mut rng = Rng::new(11);
        let g = layered_random(&mut rng, &spec);
        // Depth must be at least tasks/width layers.
        assert!(g.depth() >= 50 / 3);
    }

    #[test]
    fn montage_shape() {
        let g = montage_like(NodeId(0), 6, 1 << 20);
        assert!(g.validate().is_ok());
        // n project + (n-1) fits + model + n background + add + shrink.
        assert_eq!(g.len(), 6 + 5 + 1 + 6 + 1 + 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn broadcast_reduce_shape() {
        let g = broadcast_reduce(NodeId(0), 9, 3, 10 << 20, 1e9, 1 << 16);
        assert!(g.validate().is_ok());
        // 9 workers + reduce levels of 3 + 1.
        assert_eq!(g.len(), 9 + 3 + 1);
        assert_eq!(g.sinks().len(), 1);
        // All workers consume the single model item.
        let model_consumers = g
            .tasks()
            .iter()
            .filter(|t| t.inputs.contains(&crate::data::DataId(0)))
            .count();
        assert_eq!(model_consumers, 9);
        // depth: workers -> level0 reduce -> final reduce.
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn broadcast_reduce_uneven_chunks() {
        let g = broadcast_reduce(NodeId(0), 7, 4, 1 << 20, 1e9, 1 << 10);
        assert!(g.validate().is_ok());
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn stencil_shape() {
        let g = stencil(NodeId(0), 4, 3, 1 << 20, 1 << 12, 1e9);
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 4 * 3);
        assert_eq!(g.depth(), 3);
        // Interior cells have 3 predecessors after iteration 0.
        let t = g
            .tasks()
            .iter()
            .find(|t| t.name == "cell1_1")
            .expect("interior cell exists");
        assert_eq!(g.preds(t.id).len(), 3);
        // Border cells have 2.
        let b = g
            .tasks()
            .iter()
            .find(|t| t.name == "cell1_0")
            .expect("border cell");
        assert_eq!(g.preds(b.id).len(), 2);
    }

    #[test]
    fn stream_arrivals_increase() {
        let mut rng = Rng::new(3);
        let spec = StreamSpec {
            requests: 50,
            ..Default::default()
        };
        let w = inference_stream(&mut rng, &spec);
        assert_eq!(w.requests.len(), 50);
        for pair in w.requests.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        for (_, g) in &w.requests {
            assert!(g.validate().is_ok());
            assert_eq!(g.len(), 3);
        }
    }

    #[test]
    fn poisson_open_loop_matches_inference_stream_arrivals() {
        // Same seed and rate: the open-loop Poisson generator must walk the
        // exact arrival sequence of the closed-loop stream generator.
        let spec = OpenLoopSpec {
            requests: 64,
            process: ArrivalProcess::Poisson { rate_hz: 7.0 },
            ..Default::default()
        };
        let open: Vec<SimTime> = open_loop_arrivals(42, &spec).map(|(t, _)| t).collect();
        let mut rng = Rng::new(42);
        let closed = inference_stream(
            &mut rng,
            &StreamSpec {
                requests: 64,
                rate_hz: 7.0,
                ..Default::default()
            },
        );
        let closed_t: Vec<SimTime> = closed.requests.iter().map(|(t, _)| *t).collect();
        assert_eq!(open, closed_t);
    }

    #[test]
    fn arrival_processes_are_deterministic_and_monotone() {
        for process in [
            ArrivalProcess::Poisson { rate_hz: 20.0 },
            ArrivalProcess::Diurnal {
                trough_hz: 5.0,
                peak_hz: 50.0,
                period_s: 10.0,
            },
            ArrivalProcess::FlashCrowd {
                base_hz: 10.0,
                spike_hz: 200.0,
                at_s: 1.0,
                len_s: 0.5,
            },
        ] {
            let spec = OpenLoopSpec {
                requests: 200,
                process,
                ..Default::default()
            };
            let a: Vec<(SimTime, u64)> = open_loop_arrivals(9, &spec)
                .map(|(t, g)| (t, g.total_bytes()))
                .collect();
            let b: Vec<(SimTime, u64)> = open_loop_arrivals(9, &spec)
                .map(|(t, g)| (t, g.total_bytes()))
                .collect();
            assert_eq!(a, b, "{process:?} not deterministic per seed");
            for w in a.windows(2) {
                assert!(w[0].0 <= w[1].0, "{process:?} arrivals regressed");
            }
        }
    }

    #[test]
    fn flash_crowd_spikes_density_in_window() {
        let spec = OpenLoopSpec {
            requests: 2000,
            process: ArrivalProcess::FlashCrowd {
                base_hz: 5.0,
                spike_hz: 500.0,
                at_s: 2.0,
                len_s: 2.0,
            },
            ..Default::default()
        };
        let times: Vec<f64> = open_loop_arrivals(3, &spec)
            .map(|(t, _)| t.as_secs_f64())
            .collect();
        let in_spike = times.iter().filter(|&&t| (2.0..4.0).contains(&t)).count();
        let before = times.iter().filter(|&&t| t < 2.0).count();
        // ~1000 arrivals in the 2 s spike vs ~10 in the 2 s before it.
        assert!(
            in_spike > before * 10,
            "spike {in_spike} vs baseline {before}"
        );
    }

    #[test]
    fn diurnal_rate_swings_between_trough_and_peak() {
        let p = ArrivalProcess::Diurnal {
            trough_hz: 2.0,
            peak_hz: 40.0,
            period_s: 60.0,
        };
        assert!((p.rate_at(0.0) - 2.0).abs() < 1e-9);
        assert!((p.rate_at(30.0) - 40.0).abs() < 1e-9);
        assert!((p.rate_at(60.0) - 2.0).abs() < 1e-9);
        assert_eq!(p.peak_rate(), 40.0);
    }

    #[test]
    fn pareto_sizes_are_heavy_tailed_but_capped() {
        let spec = OpenLoopSpec {
            requests: 3000,
            process: ArrivalProcess::Poisson { rate_hz: 100.0 },
            size_alpha: Some(1.5),
            ..Default::default()
        };
        let base = OpenLoopSpec::default().frame_bytes;
        let sizes: Vec<u64> = open_loop_arrivals(11, &spec)
            .map(|(_, g)| g.data_items()[0].bytes)
            .collect();
        // Pareto(1, a) floor: no request shrinks below the baseline.
        assert!(sizes.iter().all(|&s| s >= base && s <= base * 1000));
        // Heavy tail: some requests are much larger than the median.
        let big = sizes.iter().filter(|&&s| s > base * 10).count();
        assert!(big > 0, "no tail draws in 3000 requests");
        let median = {
            let mut s = sizes.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(median < base * 3, "median {median} vs base {base}");
    }

    #[test]
    fn stream_rate_approximates() {
        let mut rng = Rng::new(5);
        let spec = StreamSpec {
            requests: 2000,
            rate_hz: 10.0,
            ..Default::default()
        };
        let w = inference_stream(&mut rng, &spec);
        let last = w.requests.last().unwrap().0.as_secs_f64();
        let rate = 2000.0 / last;
        assert!((rate - 10.0).abs() < 1.0, "rate {rate}");
    }
}
