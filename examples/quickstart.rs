//! Quickstart: build a continuum, define a workflow, compare placements.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the three steps every program takes: (1) build a [`Continuum`]
//! from a scenario, (2) describe an application as a data-driven DAG, and
//! (3) ask "where should I compute?" by running placement policies and
//! comparing the simulated outcomes.

use continuum_core::prelude::*;

fn main() {
    // 1. A continuum: 32 sensors -> 8 edge gateways -> 2 fog sites ->
    //    4 cloud nodes -> 2 HPC nodes, with tiered links.
    let world = Continuum::build(&Scenario::default_continuum());
    println!(
        "continuum: {} nodes, {} links, {} devices, {:.1} Tflop/s total",
        world.topology().node_count(),
        world.topology().link_count(),
        world.env().fleet.len(),
        world.env().fleet.total_flops() / 1e12,
    );

    // 2. An edge-analytics pipeline: a 10 MB capture at a sensor, four
    //    processing stages, data shrinking 10x per stage.
    let dag = analytics_pipeline(&PipelineSpec {
        source: world.sensors()[0],
        input_bytes: 10 << 20,
        stages: 4,
        work_per_byte: 2_000.0,
        reduction: 0.1,
    });
    println!(
        "\nworkflow '{}': {} tasks, {:.1} Gflop total, {} MB of data",
        dag.name,
        dag.len(),
        dag.total_work() / 1e9,
        dag.total_bytes() >> 20,
    );

    // 3. Where should this compute? Ask several policies.
    println!(
        "\n{:<14} {:>12} {:>12} {:>10} {:>10}",
        "policy", "makespan", "energy", "cost", "moved"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "", "(s)", "(J)", "($)", "(MB)"
    );
    let policies: Vec<Box<dyn Placer>> = vec![
        Box::new(TierPlacer::edge_only()),
        Box::new(TierPlacer::cloud_only()),
        Box::new(GreedyEftPlacer::default()),
        Box::new(DataAwarePlacer),
        Box::new(HeftPlacer::default()),
    ];
    for p in &policies {
        let report = world.run(&dag, p.as_ref());
        let m = &report.simulated;
        println!(
            "{:<14} {:>12.4} {:>12.1} {:>10.4} {:>10.2}",
            p.name(),
            m.makespan_s,
            m.energy_j,
            m.cost_usd,
            m.bytes_moved as f64 / 1e6,
        );
    }

    // Bonus: run the HEFT placement on the real thread-pool executor at
    // 1 ms of wall clock per virtual second, proving the schedule is
    // realizable by an actual concurrent runtime.
    let placement = world.place(&dag, &HeftPlacer::default());
    let real = RealExecutor { time_scale: 1e-3 }.execute(world.env(), &dag, &placement);
    println!(
        "\nreal executor: {} tasks in {:.1} ms wall ({:.3} virtual s)",
        dag.len(),
        real.makespan.as_secs_f64() * 1e3,
        real.virtual_makespan_s,
    );
}
