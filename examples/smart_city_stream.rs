//! Smart-city streaming inference across the continuum.
//!
//! ```sh
//! cargo run --release --example smart_city_stream
//! ```
//!
//! 256 sensors stream camera frames through `capture -> preprocess ->
//! infer` request DAGs. Three online policies — keep everything at the
//! edge, ship everything to the cloud, or decide per-request across the
//! whole continuum — are compared on end-to-end latency percentiles at
//! increasing arrival rates. This is the keynote's "where should I
//! compute?" asked two hundred times a second.

use continuum_core::prelude::*;
use continuum_sim::Percentiles;

fn run_policy(
    world: &Continuum,
    requests: &[(SimTime, Dag)],
    mut placer: OnlinePlacer,
) -> (String, f64, f64, f64) {
    let name = placer.name().to_string();
    let placed: Vec<(SimTime, Dag, Placement)> = requests
        .iter()
        .map(|(arrival, dag)| {
            let (placement, _) = placer.place_request(world.env(), dag, *arrival);
            (*arrival, dag.clone(), placement)
        })
        .collect();
    let trace = world.run_stream(placed);
    let mut p = Percentiles::new();
    for l in trace.latencies_s() {
        p.push(l);
    }
    let (p50, p95, p99) = p.p50_p95_p99().expect("non-empty stream");
    (name, p50, p95, p99)
}

fn main() {
    let world = Continuum::build(&Scenario::smart_city());
    println!(
        "smart city: {} sensors, {} edge gateways, {} fog sites, {} cloud nodes",
        world.sensors().len(),
        world.edges().len(),
        world.fogs().len(),
        world.clouds().len(),
    );

    for rate_hz in [2.0, 10.0, 40.0] {
        let mut rng = Rng::new(2024);
        let stream = inference_stream(
            &mut rng,
            &StreamSpec {
                sensors: world.sensors().to_vec(),
                requests: 300,
                rate_hz,
                frame_bytes: 200 << 10,
                infer_flops: 2e9,
            },
        );
        println!("\narrival rate {rate_hz:>5.1} req/s  (300 requests)");
        println!(
            "  {:<18} {:>9} {:>9} {:>9}",
            "policy", "p50 (s)", "p95 (s)", "p99 (s)"
        );
        for placer in [
            OnlinePlacer::edge_only(world.env()),
            OnlinePlacer::cloud_only(world.env()),
            OnlinePlacer::continuum(world.env()),
        ] {
            let (name, p50, p95, p99) = run_policy(&world, &stream.requests, placer);
            println!("  {name:<18} {p50:>9.4} {p95:>9.4} {p99:>9.4}");
        }
    }
    println!(
        "\nreading: at low rates cloud round-trips dominate (edge wins); as the rate\n\
         climbs the edge saturates and queues (cloud wins); the continuum policy\n\
         tracks the better of the two at every rate by deciding per request."
    );
}
