//! Programming the continuum with ordinary Rust closures.
//!
//! ```sh
//! cargo run --release --example dataflow_app
//! ```
//!
//! The Parsl-style [`AppBuilder`] turns closures into a placed, really-
//! executed workflow: a map-reduce word-count whose mappers run wherever
//! the placement engine decides, on real OS threads with per-device
//! capacity enforced, and whose actual output bytes come back to the
//! caller.

use bytes::Bytes;
use continuum_core::prelude::*;
use continuum_runtime::app::AppBuilder;

const SHARDS: usize = 8;

fn main() {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut app = AppBuilder::new("word-count");

    // Eight text shards born at eight different sensors.
    let corpus = [
        "the continuum is the computer",
        "where should i compute today",
        "the network is as fast as the computer",
        "the machine disintegrates across the net",
        "time and space merge into a computing continuum",
        "code the continuum before it codes you",
        "appliances all the way down",
        "the answer is it depends and that is the point",
    ];
    let shards: Vec<_> = corpus
        .iter()
        .enumerate()
        .map(|(i, text)| {
            app.input_data(format!("shard{i}"), Bytes::from(*text), world.sensors()[i])
        })
        .collect();

    // Map: count words per shard (runs concurrently, placed per-task).
    let counts: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(i, &shard)| {
            app.task(format!("count{i}"), 5e8, &[shard], 8, |ins| {
                let words = ins[0]
                    .split(|&b| b == b' ')
                    .filter(|w| !w.is_empty())
                    .count();
                Bytes::copy_from_slice(&(words as u64).to_le_bytes())
            })
        })
        .collect();

    // Reduce: total.
    let count_items: Vec<_> = counts.iter().map(|h| h.out).collect();
    let total = app.task("total", 1e8, &count_items, 8, |ins| {
        let sum: u64 = ins
            .iter()
            .map(|b| u64::from_le_bytes(b[..8].try_into().expect("8 bytes")))
            .sum();
        Bytes::copy_from_slice(&sum.to_le_bytes())
    });

    // Place with HEFT and actually run it: real threads, per-device core
    // semaphores, emulated transfer delays (sped up 10000x).
    let outcome = app.run(world.env(), &HeftPlacer::default(), 1e-4);

    let sum = u64::from_le_bytes(
        outcome.output(total).expect("workflow ran")[..8]
            .try_into()
            .expect("8 bytes"),
    );
    println!("counted {sum} words across {SHARDS} shards");
    println!(
        "executed {} tasks in {:.1} ms wall clock ({:.3} emulated-virtual s)",
        outcome.dag.len(),
        outcome.trace.makespan.as_secs_f64() * 1e3,
        outcome.trace.virtual_makespan_s,
    );
    println!("\nwhere did the mappers run?");
    for (i, h) in counts.iter().enumerate() {
        let dev = outcome.placement.device(h.task);
        let d = world.env().fleet.device(dev);
        println!("  count{i} -> {} at node {}", d.spec.class.label(), d.node);
    }
    let sanity: usize = corpus.iter().map(|t| t.split_whitespace().count()).sum();
    assert_eq!(sum as usize, sanity);
}
