//! Federated function-as-a-service across the continuum.
//!
//! ```sh
//! cargo run --release --example serverless_fabric
//! ```
//!
//! An inference function is registered once; endpoints run on every fog
//! and cloud device; sensors fire invocations at 100 req/s. Three routing
//! policies are compared on throughput, latency, and endpoint balance.

use continuum_core::prelude::*;
use continuum_fabric::{endpoints_on, run_fabric, FunctionRegistry, Invocation, RoutingPolicy};

fn main() {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut registry = FunctionRegistry::new();
    let infer = registry.register("infer", 5e9, 200 << 10, 1 << 10);

    // Endpoints on every fog and cloud device.
    let mut devices = world.env().fleet.in_tier(Tier::Fog);
    devices.extend(world.env().fleet.in_tier(Tier::Cloud));
    let endpoints = endpoints_on(world.env(), &devices);
    println!(
        "fabric: {} endpoints ({} slots total), function 'infer' = 5 Gflop / 200 KB in",
        endpoints.len(),
        endpoints.iter().map(|e| e.slots).sum::<u32>(),
    );

    let mut rng = Rng::new(99);
    let mut t = 0.0;
    let invocations: Vec<Invocation> = (0..3_000)
        .map(|i| {
            t += rng.exp(100.0);
            Invocation {
                arrival: SimTime::from_secs_f64(t),
                origin: world.sensors()[i % world.sensors().len()],
                function: infer,
            }
        })
        .collect();

    println!("\n3000 invocations at ~100 req/s:");
    println!(
        "  {:<18} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "routing", "thpt (/s)", "p50 (s)", "p95 (s)", "p99 (s)", "jain"
    );
    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::Locality,
    ] {
        let rep = run_fabric(world.env(), &registry, &endpoints, &invocations, policy);
        let (p50, p95, p99) = rep.latency_percentiles();
        println!(
            "  {:<18} {:>10.1} {:>9.4} {:>9.4} {:>9.4} {:>7.3}",
            policy.label(),
            rep.throughput_hz,
            p50,
            p95,
            p99,
            rep.jain,
        );
    }
    println!("\nreading: locality routing trades a little balance for much lower latency\nby keeping invocations near their origins until queues force spill-over.");
}
