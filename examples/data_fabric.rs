//! The data fabric: replica selection, caching, and cooperative
//! replication under a skewed access pattern.
//!
//! ```sh
//! cargo run --release --example data_fabric
//! ```
//!
//! A catalog of objects lives in the cloud; edge gateways repeatedly stage
//! objects under a Zipf popularity distribution. The example contrasts
//! three fabric configurations — no caching, per-site LRU caches, and
//! caches plus cooperative replication — on bytes moved and hit rate.

use continuum_core::prelude::*;
use continuum_data::{DataKey, ReplicaCatalog, StagingConfig, StagingService};
use continuum_net::RouteTable;

fn run(world: &Continuum, cfg: StagingConfig, label: &str) {
    let topo = world.topology();
    let routes = RouteTable::build(topo);
    // 200 objects of 5 MB each, all born on cloud node 0.
    let mut catalog = ReplicaCatalog::new();
    for k in 0..200u64 {
        catalog.register(DataKey(k), world.clouds()[0], 5 << 20);
    }
    let mut svc = StagingService::new(catalog, cfg, 4242);
    let mut rng = Rng::new(7);
    let mut t = SimTime::ZERO;
    for i in 0..2_000 {
        let key = DataKey(rng.zipf(200, 1.1) as u64);
        let dst = world.edges()[i % world.edges().len()];
        let out = svc.stage(topo, &routes, t, key, dst).expect("stage failed");
        t = t.max(out.ready_at);
    }
    println!(
        "  {:<22} {:>8.1} GB moved   {:>6.1}% hits   {:>8.3} s mean stage-in",
        label,
        svc.bytes_on_wire() as f64 / 1e9,
        svc.hit_rate() * 100.0,
        svc.mean_transfer_latency_s(),
    );
}

fn main() {
    let world = Continuum::build(&Scenario::default_continuum());
    println!(
        "data fabric over {} nodes; 2000 Zipf(1.1) accesses to 200 x 5 MB objects:\n",
        world.topology().node_count()
    );
    run(
        &world,
        StagingConfig {
            cache_bytes: 0,
            replicate: false,
            ..Default::default()
        },
        "no cache",
    );
    run(
        &world,
        StagingConfig {
            cache_bytes: 256 << 20,
            replicate: false,
            ..Default::default()
        },
        "LRU cache (256 MB)",
    );
    run(
        &world,
        StagingConfig {
            cache_bytes: 256 << 20,
            replicate: true,
            ..Default::default()
        },
        "cache + replication",
    );
    println!("\nreading: caching collapses repeat traffic; cooperative replication also\nshortens the paths of the misses (nearer replicas serve them).");
}
