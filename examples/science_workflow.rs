//! A Montage-style astronomy mosaic on a science campus.
//!
//! ```sh
//! cargo run --release --example science_workflow
//! ```
//!
//! Instruments on a campus produce raw images; a classic workflow
//! (project, fit, model, correct, co-add, shrink) turns them into a
//! mosaic. The example compares batch placement policies on makespan,
//! energy, and dollars, then sweeps an annealing placer's objective
//! weights to trace the time/energy/cost trade-off.

use continuum_core::prelude::*;
use continuum_placement::pareto_front;

fn main() {
    let world = Continuum::build(&Scenario::science_campus());
    let dag = montage_like(world.sensors()[0], 12, 8 << 20);
    println!(
        "science campus: {} HPC nodes, workflow '{}' with {} tasks / {:.1} Gflop",
        world.hpcs().len(),
        dag.name,
        dag.len(),
        dag.total_work() / 1e9,
    );

    println!("\nbatch policies:");
    println!(
        "  {:<14} {:>10} {:>12} {:>10}",
        "policy", "makespan", "energy (J)", "cost ($)"
    );
    let policies: Vec<Box<dyn Placer>> = vec![
        Box::new(RandomPlacer::new(7)),
        Box::new(TierPlacer::cloud_only()),
        Box::new(GreedyEftPlacer::default()),
        Box::new(CpopPlacer::default()),
        Box::new(HeftPlacer::default()),
    ];
    for p in &policies {
        let r = world.run(&dag, p.as_ref());
        println!(
            "  {:<14} {:>10.4} {:>12.1} {:>10.4}",
            p.name(),
            r.simulated.makespan_s,
            r.simulated.energy_j,
            r.simulated.cost_usd
        );
    }

    // Sweep annealing weights to trace a Pareto front.
    println!("\nannealed trade-off sweep (makespan vs energy):");
    let mut points = Vec::new();
    for (wt, we) in [(1.0, 0.0), (1.0, 0.05), (1.0, 0.2), (0.3, 1.0), (0.05, 1.0)] {
        let annealer = AnnealingPlacer {
            objective: WeightedObjective {
                w_time: wt,
                w_energy: we,
                w_cost: 0.0,
            },
            iters: 300,
            restarts: 4,
            seed: 99,
            ..Default::default()
        };
        let r = world.run(&dag, &annealer);
        println!(
            "  w_time={wt:<4} w_energy={we:<4} -> makespan {:>8.4} s, energy {:>10.1} J",
            r.simulated.makespan_s, r.simulated.energy_j
        );
        points.push(r.simulated);
    }
    let front = pareto_front(&points);
    println!(
        "  non-dominated points: {} of {}",
        front.len(),
        points.len()
    );
}
