#!/usr/bin/env python3
"""Bench speedup regression guard.

Compares every numeric key containing "speedup" in freshly generated
`BENCH_*.json` files (working tree, typically written by the `--smoke`
bench bins in CI) against the committed baseline (`git show HEAD:...`).

CI smoke runs are short and the runners are noisy, so this is a
guard-rail, not a benchmark: a fresh speedup may wobble well below the
committed full-run number without anything being wrong. We only fail
when a speedup collapses below `TOLERANCE` (default 0.5x) of its
baseline — the regime where an accidental O(n) -> O(n^2) slip or a
de-optimised hot path shows up regardless of runner noise.

Keys present only in the fresh file (new bench arms) or only in the
baseline (retired arms) are reported but never fail the build; the
comparison is over the intersection. Usage:

    python3 scripts/bench_regress.py BENCH_runtime.json BENCH_fabric.json ...
"""

import json
import subprocess
import sys

TOLERANCE = 0.5


def speedups(obj, prefix=""):
    """Flatten `obj` to {dotted.path: value} for numeric *speedup* keys."""
    out = {}
    if isinstance(obj, dict):
        for key, val in obj.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(val, (dict, list)):
                out.update(speedups(val, path))
            elif isinstance(val, (int, float)) and "speedup" in key.lower():
                out[path] = float(val)
    elif isinstance(obj, list):
        for i, val in enumerate(obj):
            out.update(speedups(val, f"{prefix}[{i}]"))
    return out


def main(files):
    failures = []
    for name in files:
        try:
            committed = subprocess.run(
                ["git", "show", f"HEAD:{name}"],
                capture_output=True,
                check=True,
                text=True,
            ).stdout
        except subprocess.CalledProcessError:
            print(f"{name}: no committed baseline, skipping")
            continue
        base = speedups(json.loads(committed))
        with open(name) as fh:
            fresh = speedups(json.load(fh))
        for path in sorted(set(base) | set(fresh)):
            if path not in fresh:
                print(f"{name}: {path} only in baseline (retired arm?)")
            elif path not in base:
                print(f"{name}: {path} only in fresh run (new arm)")
            else:
                ratio = fresh[path] / base[path] if base[path] else float("inf")
                verdict = "ok" if ratio >= TOLERANCE else "REGRESSED"
                print(
                    f"{name}: {path} baseline {base[path]:.3f} "
                    f"fresh {fresh[path]:.3f} ratio {ratio:.2f} {verdict}"
                )
                if ratio < TOLERANCE:
                    failures.append((name, path, base[path], fresh[path]))
    if failures:
        print(f"\n{len(failures)} speedup(s) below {TOLERANCE}x of baseline:")
        for name, path, b, f in failures:
            print(f"  {name}: {path} {b:.3f} -> {f:.3f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
